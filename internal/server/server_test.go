package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/s3pg/s3pg/internal/datagen"
	"github.com/s3pg/s3pg/internal/jobs"
	"github.com/s3pg/s3pg/internal/obs"
	"github.com/s3pg/s3pg/internal/rio"
	"github.com/s3pg/s3pg/internal/shacl"
	"github.com/s3pg/s3pg/internal/shapeex"
)

var testDataset = sync.OnceValues(func() (string, string) {
	p := datagen.University()
	g := datagen.Generate(p, 0.2, 7)
	shapes := shapeex.Extract(g, shapeex.Options{MinSupport: 0.01})
	var sb bytes.Buffer
	tw := rio.NewTurtleWriter()
	tw.Prefix("d", p.NS)
	tw.Prefix("shape", shapeex.ShapeNS)
	if err := tw.Write(&sb, shacl.ToGraph(shapes)); err != nil {
		panic(err)
	}
	var db bytes.Buffer
	if err := rio.WriteNTriples(&db, g); err != nil {
		panic(err)
	}
	return sb.String(), db.String()
})

// newTestServer stands up a manager + server over a temp spool.
func newTestServer(t *testing.T, mcfg jobs.Config) (*Server, *jobs.Manager) {
	t.Helper()
	if mcfg.Dir == "" {
		mcfg.Dir = filepath.Join(t.TempDir(), "spool")
	}
	if mcfg.ChunkSize == 0 {
		mcfg.ChunkSize = 64
	}
	mcfg.Log = testLogger(t)
	mgr, err := jobs.Open(mcfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mgr.Close() })
	return New(Config{Manager: mgr, Log: testLogger(t)}), mgr
}

// tlogWriter routes structured log lines into the test log.
type tlogWriter struct{ t *testing.T }

func (w tlogWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", bytes.TrimRight(p, "\n"))
	return len(p), nil
}

func testLogger(t *testing.T) *obs.Logger { return obs.NewLogger(tlogWriter{t}, "test") }

func doJSON(t *testing.T, h http.Handler, method, path string, body any) (*httptest.ResponseRecorder, []byte) {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	} else {
		rd = bytes.NewReader(nil)
	}
	req := httptest.NewRequest(method, path, rd)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	return rr, rr.Body.Bytes()
}

func submitOne(t *testing.T, h http.Handler) jobs.Job {
	t.Helper()
	shapes, data := testDataset()
	rr, raw := doJSON(t, h, "POST", "/jobs", SubmitRequest{Shapes: shapes, Data: data})
	if rr.Code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", rr.Code, raw)
	}
	var j jobs.Job
	if err := json.Unmarshal(raw, &j); err != nil {
		t.Fatal(err)
	}
	if loc := rr.Header().Get("Location"); loc != "/jobs/"+j.ID {
		t.Fatalf("Location: %q", loc)
	}
	return j
}

func waitDone(t *testing.T, h http.Handler, id string) jobs.Job {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		rr, raw := doJSON(t, h, "GET", "/jobs/"+id, nil)
		if rr.Code != http.StatusOK {
			t.Fatalf("status: %d %s", rr.Code, raw)
		}
		var j jobs.Job
		if err := json.Unmarshal(raw, &j); err != nil {
			t.Fatal(err)
		}
		if j.State.Terminal() {
			return j
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("job did not finish in 30s")
	return jobs.Job{}
}

func TestSubmitStatusOutputRoundTrip(t *testing.T) {
	srv, _ := newTestServer(t, jobs.Config{})
	j := submitOne(t, srv)
	done := waitDone(t, srv, j.ID)
	if done.State != jobs.StateDone {
		t.Fatalf("job: %s (%s)", done.State, done.Error)
	}
	for _, name := range done.Outputs {
		rr, raw := doJSON(t, srv, "GET", "/jobs/"+j.ID+"/output/"+name, nil)
		if rr.Code != http.StatusOK || len(raw) == 0 {
			t.Fatalf("output %s: %d (%d bytes)", name, rr.Code, len(raw))
		}
	}
	// The list includes the job.
	rr, raw := doJSON(t, srv, "GET", "/jobs", nil)
	if rr.Code != http.StatusOK || !strings.Contains(string(raw), j.ID) {
		t.Fatalf("list: %d %s", rr.Code, raw)
	}
}

func TestSubmitRejectsBadRequests(t *testing.T) {
	srv, _ := newTestServer(t, jobs.Config{})
	shapes, data := testDataset()
	cases := []struct {
		name string
		body any
		raw  string
		want int
	}{
		{"malformed json", nil, "{not json", http.StatusBadRequest},
		{"bad timeout", SubmitRequest{Timeout: "soon", Shapes: shapes, Data: data}, "", http.StatusBadRequest},
		{"bad mode", SubmitRequest{Mode: "extravagant", Shapes: shapes, Data: data}, "", http.StatusBadRequest},
		{"bad shapes", SubmitRequest{Shapes: "@prefix broken", Data: data}, "", http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var rr *httptest.ResponseRecorder
			if tc.raw != "" {
				req := httptest.NewRequest("POST", "/jobs", strings.NewReader(tc.raw))
				rr = httptest.NewRecorder()
				srv.ServeHTTP(rr, req)
			} else {
				rr, _ = doJSON(t, srv, "POST", "/jobs", tc.body)
			}
			if rr.Code != tc.want {
				t.Fatalf("status %d, want %d: %s", rr.Code, tc.want, rr.Body)
			}
		})
	}
}

func TestSubmitBodyTooLarge(t *testing.T) {
	srv, _ := newTestServer(t, jobs.Config{})
	srv.cfg.MaxBodyBytes = 1024
	big := SubmitRequest{Shapes: strings.Repeat("x", 2048), Data: "y"}
	rr, _ := doJSON(t, srv, "POST", "/jobs", big)
	if rr.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", rr.Code)
	}
}

func TestQueueFullGets429WithRetryAfter(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	srv, _ := newTestServer(t, jobs.Config{
		Workers:     1,
		QueueDepth:  1,
		BeforeChunk: func(string, int) { <-release },
	})
	submitOne(t, srv) // occupies the worker
	// Wait for the worker to pick it up so the queue slot frees.
	shapes, data := testDataset()
	deadline := time.Now().Add(10 * time.Second)
	var last *httptest.ResponseRecorder
	for time.Now().Before(deadline) {
		rr, _ := doJSON(t, srv, "POST", "/jobs", SubmitRequest{Shapes: shapes, Data: data})
		if rr.Code == http.StatusAccepted {
			last = nil
			continue // filled the queue slot; next submit must bounce
		}
		last = rr
		break
	}
	if last == nil {
		t.Fatal("queue never filled")
	}
	if last.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", last.Code, last.Body)
	}
	if last.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
}

func TestUnknownJobAndOutputErrors(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	srv, _ := newTestServer(t, jobs.Config{BeforeChunk: func(string, int) { <-release }})
	if rr, _ := doJSON(t, srv, "GET", "/jobs/nope", nil); rr.Code != http.StatusNotFound {
		t.Fatalf("unknown job: %d", rr.Code)
	}
	if rr, _ := doJSON(t, srv, "GET", "/jobs/nope/output/nodes.csv", nil); rr.Code != http.StatusNotFound {
		t.Fatalf("unknown job output: %d", rr.Code)
	}
	j := submitOne(t, srv)
	// Still running (blocked): its outputs are not servable yet.
	if rr, _ := doJSON(t, srv, "GET", "/jobs/"+j.ID+"/output/nodes.csv", nil); rr.Code != http.StatusConflict {
		t.Fatalf("unfinished output: %d", rr.Code)
	}
	if rr, _ := doJSON(t, srv, "GET", "/jobs/"+j.ID+"/output/secrets.txt", nil); rr.Code != http.StatusConflict {
		t.Fatalf("bad output name: %d", rr.Code)
	}
}

func TestHealthReadyAndLameDuck(t *testing.T) {
	srv, _ := newTestServer(t, jobs.Config{})
	if rr, _ := doJSON(t, srv, "GET", "/healthz", nil); rr.Code != http.StatusOK {
		t.Fatalf("healthz: %d", rr.Code)
	}
	if rr, _ := doJSON(t, srv, "GET", "/readyz", nil); rr.Code != http.StatusOK {
		t.Fatalf("readyz: %d", rr.Code)
	}
	srv.EnterLameDuck()
	// Liveness stays green; readiness and admission flip.
	if rr, _ := doJSON(t, srv, "GET", "/healthz", nil); rr.Code != http.StatusOK {
		t.Fatalf("healthz in lame duck: %d", rr.Code)
	}
	rr, raw := doJSON(t, srv, "GET", "/readyz", nil)
	if rr.Code != http.StatusServiceUnavailable || !strings.Contains(string(raw), "lame duck") {
		t.Fatalf("readyz in lame duck: %d %s", rr.Code, raw)
	}
	shapes, data := testDataset()
	if rr, _ := doJSON(t, srv, "POST", "/jobs", SubmitRequest{Shapes: shapes, Data: data}); rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("submit in lame duck: %d", rr.Code)
	}
}

// TestReadyz503CarriesRetryAfter: every 503 the server produces — readyz and
// submit rejections alike — carries a positive Retry-After hint so
// distributed clients (the dist coordinator included) back off instead of
// hammering a server that is guaranteed to shed them.
func TestReadyz503CarriesRetryAfter(t *testing.T) {
	srv, _ := newTestServer(t, jobs.Config{})
	srv.EnterLameDuck()
	rr, _ := doJSON(t, srv, "GET", "/readyz", nil)
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("lame-duck readyz: %d", rr.Code)
	}
	if ra := rr.Header().Get("Retry-After"); ra == "" {
		t.Fatal("readyz 503 without Retry-After")
	} else if n, err := strconv.Atoi(ra); err != nil || n < 1 {
		t.Fatalf("Retry-After %q is not a positive integer of seconds", ra)
	}
	shapes, data := testDataset()
	rr, _ = doJSON(t, srv, "POST", "/jobs", SubmitRequest{Shapes: shapes, Data: data})
	if rr.Code != http.StatusServiceUnavailable || rr.Header().Get("Retry-After") == "" {
		t.Fatalf("lame-duck submit: code=%d Retry-After=%q", rr.Code, rr.Header().Get("Retry-After"))
	}
}

func TestReadyzReflectsMemPressure(t *testing.T) {
	// Pin enough live heap that HeapAlloc is certainly above the 1 MiB
	// watermark: a fresh small test process can sit under 1 MiB and make
	// the expected pressure vanish.
	ballast := make([]byte, 8<<20)
	defer runtime.KeepAlive(ballast)
	srv, _ := newTestServer(t, jobs.Config{MaxMemMB: 1})
	rr, raw := doJSON(t, srv, "GET", "/readyz", nil)
	if rr.Code != http.StatusServiceUnavailable || !strings.Contains(string(raw), "memory") {
		t.Fatalf("readyz under memory pressure: %d %s", rr.Code, raw)
	}
	shapes, data := testDataset()
	rr, _ = doJSON(t, srv, "POST", "/jobs", SubmitRequest{Shapes: shapes, Data: data})
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("submit under memory pressure: %d", rr.Code)
	}
	if rr.Header().Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
}

func TestMetricsEndpoint(t *testing.T) {
	srv, _ := newTestServer(t, jobs.Config{})
	j := submitOne(t, srv)
	waitDone(t, srv, j.ID)
	rr, raw := doJSON(t, srv, "GET", "/metrics", nil)
	if rr.Code != http.StatusOK {
		t.Fatalf("metrics: %d", rr.Code)
	}
	var body struct {
		Jobs    jobs.Stats `json:"jobs"`
		Metrics struct {
			Counters map[string]int64 `json:"counters"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(raw, &body); err != nil {
		t.Fatalf("metrics not JSON: %v\n%s", err, raw)
	}
	if body.Jobs.Done == 0 {
		t.Fatalf("metrics jobs stats: %+v", body.Jobs)
	}
	if body.Metrics.Counters["jobs.accepted"] == 0 {
		t.Fatal("metrics missing jobs.accepted counter")
	}
}
