// graphs.go is the live-graph surface of the daemon: named RDF graphs that
// accept SPARQL Update batches and stream the resulting property-graph deltas
// to subscribers. Each graph is a crash-safe session — the initial snapshot
// (source N-Triples + SHACL shapes) is committed atomically at creation, and
// every accepted update batch is fsynced into a per-graph write-ahead log
// before the 202 acknowledgment carries its LSN back to the client. Recovery
// is replay: reload the snapshot, re-apply the WAL's update records in LSN
// order, and — because core.ApplyDelta is deterministic — arrive at the exact
// pre-crash store and the exact pre-crash change stream. Exactly-once
// semantics therefore need no dedup table: an LSN is applied exactly once per
// process lifetime, and replay after a crash reproduces rather than repeats
// it (the WAL's APPLIED digests are checked to prove that).
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/s3pg/s3pg/internal/ckpt"
	"github.com/s3pg/s3pg/internal/core"
	"github.com/s3pg/s3pg/internal/obs"
	"github.com/s3pg/s3pg/internal/rdf"
	"github.com/s3pg/s3pg/internal/rio"
	"github.com/s3pg/s3pg/internal/serve"
	"github.com/s3pg/s3pg/internal/shacl"
	"github.com/s3pg/s3pg/internal/wal"
)

// Per-graph spool layout: graphs/<id>/{shapes.ttl, source.nt, meta.json,
// wal/}. meta.json is written last during creation, so a directory without
// it is an aborted create and is ignored (and logged) on reload.
const (
	graphShapesFile = "shapes.ttl"
	graphSourceFile = "source.nt"
	graphMetaFile   = "meta.json"
	graphWALDir     = "wal"
)

var (
	cGraphUpdates   = obs.Default.Counter("graphs.updates")
	cGraphRejected  = obs.Default.Counter("graphs.updates_rejected")
	cGraphRecovered = obs.Default.Counter("graphs.recovered_batches")
	cGraphStreams   = obs.Default.Counter("graphs.streams")
	cGraphStreamRec = obs.Default.Counter("graphs.stream_records")
	cGraphBroken    = obs.Default.Counter("graphs.broken")
)

// Graph-layer sentinel errors, mapped to HTTP statuses by graphStatusCode.
var (
	ErrUnknownGraph  = errors.New("graphs: unknown graph")
	ErrGraphExists   = errors.New("graphs: graph already exists")
	ErrGraphBusy     = errors.New("graphs: update queue full")
	ErrGraphBroken   = errors.New("graphs: graph persistence failed; restart to recover")
	ErrDeltaRejected = errors.New("graphs: update rejected")
	ErrGraphDraining = errors.New("graphs: draining")
)

// graphIDPattern keeps graph ids filesystem- and URL-safe.
var graphIDPattern = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9_.-]{0,63}$`)

// GraphConfig parameterizes a GraphManager.
type GraphConfig struct {
	// Dir is the root spool directory; each graph owns a subdirectory.
	Dir string
	// FS is the filesystem seam for every durable write (snapshot files and
	// the WAL). Nil means the real filesystem; internal/faultio injects.
	FS ckpt.FS
	// QueueDepth bounds concurrently admitted updates per graph; excess
	// submissions are bounced with ErrGraphBusy (429). 0 means 16.
	QueueDepth int
	// HistoryLimit bounds the in-memory PG delta history per graph (and the
	// history rebuilt on restart). Subscribers whose cursor has fallen behind
	// the window are served by deterministically replaying the snapshot + WAL,
	// so the stream contract is unchanged — only the memory footprint is.
	// 0 means 1024; negative means unbounded.
	HistoryLimit int
	// SegmentBytes is the per-graph WAL rotation threshold (0 = wal default).
	SegmentBytes int64
	// Log receives structured records. Nil discards them.
	Log *obs.Logger
	// StallApply and StallWAL are chaos-test hooks: a sleep inserted before
	// ApplyDelta / before the WAL append of every update, opening a wide,
	// deterministic window for SIGKILL to land mid-apply or mid-append.
	// Zero (production) inserts nothing.
	StallApply, StallWAL time.Duration
}

// GraphManager owns the live graph sessions.
type GraphManager struct {
	cfg GraphConfig

	mu       sync.Mutex
	graphs   map[string]*graphSession
	draining bool
}

// graphSession is one live graph. applyMu serializes the update path — apply
// to the in-memory state, append to the WAL, publish to the history — so the
// WAL's LSN order is the apply order is the stream order. histMu guards the
// published history and gates subscribers; it is never held across I/O.
type graphSession struct {
	id   string
	dir  string
	mode core.Mode

	sem chan struct{} // admission: one slot per queued-or-running update

	applyMu sync.Mutex
	state   *core.DeltaState
	wlog    *wal.Log
	broken  error

	histMu    sync.Mutex
	cond      *sync.Cond
	histBase  uint64          // LSN of the last delta trimmed from the window (0 = none)
	hist      []*core.PGDelta // hist[i] is the delta acknowledged as LSN histBase+i+1
	histLimit int             // retention window; <= 0 means unbounded
	drain     bool

	// Query serving (internal/serve). lsn is the latest applied LSN, stored
	// after each successful apply; snap caches the immutable snapshot last
	// published for queries. Snapshots are materialized lazily — on the first
	// query that observes a stale snap — rather than eagerly per apply, so
	// the delta path never pays for cloning when nobody is querying.
	lsn  atomic.Uint64
	snap atomic.Pointer[serve.Snapshot]
}

// GraphStatus is the GET /graphs/{id} document.
type GraphStatus struct {
	ID          string `json:"id"`
	Mode        string `json:"mode"`
	LSN         uint64 `json:"lsn"`
	Nodes       int    `json:"nodes"`
	Edges       int    `json:"edges"`
	FastApplies int64  `json:"fast_applies"`
	Rebuilds    int64  `json:"rebuilds"`
	Broken      string `json:"broken,omitempty"`
}

// UpdateResult is the 202 body for an accepted update batch.
type UpdateResult struct {
	LSN uint64 `json:"lsn"`
	// Digest is the SHA-256 of the canonical PG delta — the exactly-once
	// witness: a replayed batch must reproduce it bit-for-bit.
	Digest string `json:"digest"`
	Nodes  int    `json:"nodes_changed"`
	Edges  int    `json:"edges_changed"`
}

type graphMeta struct {
	Mode string `json:"mode"`
}

// OpenGraphs loads every graph session under cfg.Dir, replaying each WAL
// against its snapshot, and returns the manager. A graph whose replay
// diverges from its recorded APPLIED digests fails the open loudly — that is
// a determinism bug, not something to serve through.
func OpenGraphs(cfg GraphConfig) (*GraphManager, error) {
	if cfg.FS == nil {
		cfg.FS = ckpt.OSFS
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	if cfg.HistoryLimit == 0 {
		cfg.HistoryLimit = 1024
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	m := &GraphManager{cfg: cfg, graphs: make(map[string]*graphSession)}
	entries, err := os.ReadDir(cfg.Dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		id := e.Name()
		if _, err := os.Stat(filepath.Join(cfg.Dir, id, graphMetaFile)); err != nil {
			// No meta: the create never committed. Ignore the husk.
			m.cfg.Log.Warn("graph_ignored_incomplete", "graph", id)
			continue
		}
		gs, err := m.loadGraph(id)
		if err != nil {
			return nil, fmt.Errorf("graphs: load %s: %w", id, err)
		}
		m.graphs[id] = gs
		m.cfg.Log.Info("graph_recovered", "graph", id, "lsn", gs.lastLSN())
	}
	return m, nil
}

// Create materializes a new graph session: parse and transform the snapshot,
// persist it (meta.json last, so a crash mid-create leaves an ignorable
// husk), and open a fresh WAL.
func (m *GraphManager) Create(id, mode, shapesTTL, dataNT string) (*GraphStatus, error) {
	if !graphIDPattern.MatchString(id) {
		return nil, fmt.Errorf("%w: bad graph id %q", ErrDeltaRejected, id)
	}
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return nil, ErrGraphDraining
	}
	if _, ok := m.graphs[id]; ok {
		m.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrGraphExists, id)
	}
	// Reserve the slot before the (slow) initial transform so two racing
	// creates cannot both win.
	m.graphs[id] = nil
	m.mu.Unlock()
	gs, err := m.createLocked(id, mode, shapesTTL, dataNT)
	m.mu.Lock()
	if err != nil {
		delete(m.graphs, id)
		m.mu.Unlock()
		return nil, err
	}
	m.graphs[id] = gs
	m.mu.Unlock()
	m.cfg.Log.Info("graph_created", "graph", id, "mode", gs.mode.String(),
		"nodes", gs.state.Store().NumNodes(), "edges", gs.state.Store().NumEdges())
	return gs.status(), nil
}

func (m *GraphManager) createLocked(id, mode, shapesTTL, dataNT string) (*graphSession, error) {
	state, md, err := buildDeltaState(mode, shapesTTL, dataNT)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDeltaRejected, err)
	}
	dir := filepath.Join(m.cfg.Dir, id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	writes := []struct{ name, body string }{
		{graphShapesFile, shapesTTL},
		{graphSourceFile, dataNT},
	}
	for _, wr := range writes {
		err := ckpt.WriteFileAtomicFS(m.cfg.FS, filepath.Join(dir, wr.name), 0o644, func(w io.Writer) error {
			_, werr := io.WriteString(w, wr.body)
			return werr
		})
		if err != nil {
			return nil, err
		}
	}
	metaBody, err := json.Marshal(graphMeta{Mode: md.String()})
	if err != nil {
		return nil, err
	}
	if err := ckpt.WriteFileAtomicFS(m.cfg.FS, filepath.Join(dir, graphMetaFile), 0o644, func(w io.Writer) error {
		_, werr := w.Write(metaBody)
		return werr
	}); err != nil {
		return nil, err
	}
	wlog, recs, err := wal.Open(filepath.Join(dir, graphWALDir), wal.Options{FS: m.cfg.FS, SegmentBytes: m.cfg.SegmentBytes})
	if err != nil {
		return nil, err
	}
	if len(recs) != 0 {
		wlog.Close()
		return nil, fmt.Errorf("graphs: fresh graph %s has %d WAL records", id, len(recs))
	}
	return m.newSession(id, dir, md, state, wlog), nil
}

// loadGraph recovers one session from its spool directory: snapshot, then
// WAL replay. Every UPDATE record must re-apply cleanly (only applied batches
// are logged), and where an APPLIED digest was recorded the replayed delta
// must reproduce it exactly.
func (m *GraphManager) loadGraph(id string) (*graphSession, error) {
	dir := filepath.Join(m.cfg.Dir, id)
	metaRaw, err := os.ReadFile(filepath.Join(dir, graphMetaFile))
	if err != nil {
		return nil, err
	}
	var meta graphMeta
	if err := json.Unmarshal(metaRaw, &meta); err != nil {
		return nil, fmt.Errorf("bad %s: %w", graphMetaFile, err)
	}
	shapesRaw, err := os.ReadFile(filepath.Join(dir, graphShapesFile))
	if err != nil {
		return nil, err
	}
	dataRaw, err := os.ReadFile(filepath.Join(dir, graphSourceFile))
	if err != nil {
		return nil, err
	}
	state, md, err := buildDeltaState(meta.Mode, string(shapesRaw), string(dataRaw))
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	wlog, recs, err := wal.Open(filepath.Join(dir, graphWALDir), wal.Options{FS: m.cfg.FS, SegmentBytes: m.cfg.SegmentBytes})
	if err != nil {
		return nil, err
	}
	gs := m.newSession(id, dir, md, state, wlog)
	applied := make(map[uint64]string)
	for _, r := range recs {
		if r.Kind == wal.KindApplied {
			applied[r.LSN] = string(r.Payload)
		}
	}
	for _, r := range recs {
		if r.Kind != wal.KindUpdate {
			continue
		}
		d, err := rdf.DecodeDelta(r.Payload, rio.ParseNTriplesLine)
		if err != nil {
			wlog.Close()
			return nil, fmt.Errorf("wal lsn %d: %w", r.LSN, err)
		}
		pd, err := state.ApplyDelta(d)
		if err != nil {
			// Only successfully applied batches are logged, and apply is
			// deterministic: a replay rejection means the snapshot or the
			// engine changed underneath the log.
			wlog.Close()
			return nil, fmt.Errorf("wal lsn %d: replay rejected: %w", r.LSN, err)
		}
		pd.LSN = r.LSN
		digest, err := pd.Digest()
		if err != nil {
			wlog.Close()
			return nil, fmt.Errorf("wal lsn %d: %w", r.LSN, err)
		}
		if want, ok := applied[r.LSN]; ok && want != digest {
			wlog.Close()
			return nil, fmt.Errorf("wal lsn %d: replay digest %s != recorded %s (nondeterministic apply)",
				r.LSN, digest, want)
		}
		gs.hist = append(gs.hist, pd)
		gs.trimHistLocked() // bound restart memory the same way live appends are
		cGraphRecovered.Inc()
	}
	gs.lsn.Store(gs.histBase + uint64(len(gs.hist)))
	return gs, nil
}

func (m *GraphManager) newSession(id, dir string, md core.Mode, state *core.DeltaState, wlog *wal.Log) *graphSession {
	gs := &graphSession{
		id: id, dir: dir, mode: md,
		sem:   make(chan struct{}, m.cfg.QueueDepth),
		state: state, wlog: wlog,
		histLimit: m.cfg.HistoryLimit,
	}
	gs.cond = sync.NewCond(&gs.histMu)
	return gs
}

// buildDeltaState parses mode/shapes/data and runs the initial transform.
func buildDeltaState(mode, shapesTTL, dataNT string) (*core.DeltaState, core.Mode, error) {
	if mode == "" {
		mode = core.Parsimonious.String()
	}
	md, err := core.ParseMode(mode)
	if err != nil {
		return nil, 0, err
	}
	sgGraph, err := rio.ParseTurtle(shapesTTL)
	if err != nil {
		return nil, 0, fmt.Errorf("shapes: %w", err)
	}
	sg, err := shacl.FromGraph(sgGraph)
	if err != nil {
		return nil, 0, fmt.Errorf("shapes: %w", err)
	}
	g, err := rio.LoadNTriples(strings.NewReader(dataNT))
	if err != nil {
		return nil, 0, fmt.Errorf("data: %w", err)
	}
	state, err := core.NewDeltaState(g, sg, md)
	if err != nil {
		return nil, 0, err
	}
	return state, md, nil
}

// get resolves a session by id.
func (m *GraphManager) get(id string) (*graphSession, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	gs, ok := m.graphs[id]
	if !ok || gs == nil {
		return nil, fmt.Errorf("%w: %s", ErrUnknownGraph, id)
	}
	return gs, nil
}

// Status returns one graph's status document.
func (m *GraphManager) Status(id string) (*GraphStatus, error) {
	gs, err := m.get(id)
	if err != nil {
		return nil, err
	}
	return gs.status(), nil
}

// List returns every graph's status, sorted by id.
func (m *GraphManager) List() []*GraphStatus {
	m.mu.Lock()
	var sessions []*graphSession
	for _, gs := range m.graphs {
		if gs != nil {
			sessions = append(sessions, gs)
		}
	}
	m.mu.Unlock()
	sort.Slice(sessions, func(i, j int) bool { return sessions[i].id < sessions[j].id })
	out := make([]*GraphStatus, len(sessions))
	for i, gs := range sessions {
		out[i] = gs.status()
	}
	return out
}

// Update runs one parsed SPARQL Update batch through a graph: admission,
// apply, durable WAL append, publish. The returned result's LSN is durable —
// the UPDATE record was fsynced before this returns.
func (m *GraphManager) Update(id string, d *rdf.Delta) (*UpdateResult, error) {
	gs, err := m.get(id)
	if err != nil {
		return nil, err
	}
	select {
	case gs.sem <- struct{}{}:
	default:
		return nil, fmt.Errorf("%w: graph %s has %d updates in flight", ErrGraphBusy, id, cap(gs.sem))
	}
	defer func() { <-gs.sem }()
	return m.applyOne(gs, d)
}

func (m *GraphManager) applyOne(gs *graphSession, d *rdf.Delta) (*UpdateResult, error) {
	gs.applyMu.Lock()
	defer gs.applyMu.Unlock()
	if gs.broken != nil {
		return nil, fmt.Errorf("%w: %v", ErrGraphBroken, gs.broken)
	}

	// Apply to memory first: a rejected batch never consumes an LSN and
	// never reaches the WAL, so the log holds applied batches only and the
	// change stream stays dense. Nothing is acknowledged yet — if the WAL
	// append below fails or the process dies first, the client never saw a
	// 202 and recovery (which replays the WAL alone) simply won't have it.
	m.stall(m.cfg.StallApply)
	pd, err := gs.state.ApplyDelta(d)
	if err != nil {
		cGraphRejected.Inc()
		return nil, fmt.Errorf("%w: %v", ErrDeltaRejected, err)
	}
	m.stall(m.cfg.StallWAL)
	lsn, err := gs.wlog.AppendUpdate(d.Encode())
	if err != nil {
		// The in-memory state is now ahead of the log; continuing would
		// assign wrong LSNs to later batches. Poison the session — only a
		// process restart (full replay) recovers it.
		gs.broken = err
		cGraphBroken.Inc()
		m.cfg.Log.Error("graph_wal_append_failed", "graph", gs.id, "error", err)
		return nil, fmt.Errorf("%w: %v", ErrGraphBroken, err)
	}
	pd.LSN = lsn
	digest, err := pd.Digest()
	if err != nil {
		// Encoding a PGDelta cannot realistically fail; treat it as a
		// determinism-witness loss, not a lost batch.
		m.cfg.Log.Error("graph_digest_failed", "graph", gs.id, "lsn", lsn, "error", err)
	} else if err := gs.wlog.AppendApplied(lsn, []byte(digest)); err != nil {
		// The UPDATE record is durable, so the batch is accepted and the
		// ack below is truthful; but the log is poisoned (a torn frame may
		// follow), so later updates must bounce until a restart.
		gs.broken = err
		cGraphBroken.Inc()
		m.cfg.Log.Error("graph_wal_applied_failed", "graph", gs.id, "lsn", lsn, "error", err)
	}

	gs.histMu.Lock()
	gs.hist = append(gs.hist, pd)
	gs.trimHistLocked()
	gs.histMu.Unlock()
	// Publishing the LSN (still under applyMu) invalidates the cached query
	// snapshot; the next query rebuilds it lazily from the new state.
	gs.lsn.Store(lsn)
	gs.cond.Broadcast()
	cGraphUpdates.Inc()
	m.cfg.Log.Info("graph_update_applied", "graph", gs.id, "lsn", lsn,
		"deletes", len(d.Deletes), "inserts", len(d.Inserts),
		"nodes_changed", len(pd.Nodes), "edges_changed", len(pd.Edges))
	return &UpdateResult{LSN: lsn, Digest: digest, Nodes: len(pd.Nodes), Edges: len(pd.Edges)}, nil
}

func (m *GraphManager) stall(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}

// Changes streams the graph's PG deltas with LSN > from, in LSN order, by
// calling send once per delta. With follow=false it returns once caught up;
// with follow=true it long-polls for new deltas until the client goes away
// (send fails / done closes) or the manager drains. The contract that makes
// subscriber crash-recovery trivial: the stream from any cursor is a dense,
// deterministic suffix, so "resume from the last LSN I processed" can never
// skip or repeat a delta. Cursors that have fallen behind the in-memory
// retention window are served by replaying the snapshot + WAL, which — apply
// being deterministic — reconstructs the identical deltas.
//
// All cursor arithmetic is done in uint64 space: from is client-supplied and
// may be anything up to MaxUint64, which must never index the history slice.
func (m *GraphManager) Changes(id string, from uint64, follow bool, done <-chan struct{}, send func(*core.PGDelta) error) error {
	gs, err := m.get(id)
	if err != nil {
		return err
	}
	next := from + 1
	if next == 0 {
		// from == MaxUint64: no LSN can ever exceed the cursor. Reject rather
		// than silently serving an empty (or, with follow, eternal) stream.
		return fmt.Errorf("%w: cursor %d is past any possible LSN", ErrDeltaRejected, from)
	}
	cGraphStreams.Inc()
	// A cond has no channel to select on: a watcher goroutine converts the
	// client-gone signal into a broadcast so blocked waiters re-check.
	stopWatch := make(chan struct{})
	defer close(stopWatch)
	go func() {
		select {
		case <-done:
			gs.cond.Broadcast()
		case <-stopWatch:
		}
	}()

	for {
		gs.histMu.Lock()
		for next > gs.histBase+uint64(len(gs.hist)) && follow && !gs.drain && !closed(done) {
			gs.cond.Wait()
		}
		base := gs.histBase
		var pd *core.PGDelta
		if next > base && next-base <= uint64(len(gs.hist)) {
			pd = gs.hist[next-base-1]
		}
		gs.histMu.Unlock()
		if next <= base {
			// The cursor predates the retention window: reconstruct the
			// missing [next, base] prefix from durable state, stream it, and
			// loop back into the live window.
			pds, err := m.replayHistory(gs, next, base)
			if err != nil {
				return err
			}
			for _, pd := range pds {
				if err := send(pd); err != nil {
					return err
				}
				cGraphStreamRec.Inc()
				next++
			}
			continue
		}
		if pd == nil {
			return nil // caught up: follow=false, drain, or client gone
		}
		if err := send(pd); err != nil {
			return err // client went away mid-write
		}
		cGraphStreamRec.Inc()
		next++
	}
}

// replayHistory rebuilds the PG deltas for LSNs in [lo, hi] by re-running the
// deterministic apply pipeline over the graph's immutable snapshot and its
// WAL — the same computation loadGraph performs at startup, scoped to a
// cursor catch-up. Appends are paused (applyMu) only for the raw WAL read;
// the expensive replay happens unlocked. Every LSN <= hi has a durable UPDATE
// record (applyOne publishes a delta only after its record is fsynced), so a
// short result is a corruption signal, not a race.
func (m *GraphManager) replayHistory(gs *graphSession, lo, hi uint64) ([]*core.PGDelta, error) {
	shapesRaw, err := os.ReadFile(filepath.Join(gs.dir, graphShapesFile))
	if err != nil {
		return nil, err
	}
	dataRaw, err := os.ReadFile(filepath.Join(gs.dir, graphSourceFile))
	if err != nil {
		return nil, err
	}
	gs.applyMu.Lock()
	recs, err := wal.ReadRecords(filepath.Join(gs.dir, graphWALDir))
	gs.applyMu.Unlock()
	if err != nil {
		return nil, err
	}
	state, _, err := buildDeltaState(gs.mode.String(), string(shapesRaw), string(dataRaw))
	if err != nil {
		return nil, fmt.Errorf("graphs: replay %s: snapshot: %w", gs.id, err)
	}
	var out []*core.PGDelta
	for _, r := range recs {
		if r.Kind != wal.KindUpdate {
			continue
		}
		if r.LSN > hi {
			break
		}
		d, err := rdf.DecodeDelta(r.Payload, rio.ParseNTriplesLine)
		if err != nil {
			return nil, fmt.Errorf("graphs: replay %s: wal lsn %d: %w", gs.id, r.LSN, err)
		}
		pd, err := state.ApplyDelta(d)
		if err != nil {
			return nil, fmt.Errorf("graphs: replay %s: wal lsn %d: %w", gs.id, r.LSN, err)
		}
		pd.LSN = r.LSN
		if r.LSN >= lo {
			out = append(out, pd)
		}
	}
	if uint64(len(out)) != hi-lo+1 {
		return nil, fmt.Errorf("graphs: replay %s: wal holds %d of %d deltas in [%d, %d]",
			gs.id, len(out), hi-lo+1, lo, hi)
	}
	return out, nil
}

func closed(c <-chan struct{}) bool {
	select {
	case <-c:
		return true
	default:
		return false
	}
}

// Export writes one derived artifact — nodes.csv, edges.csv, or schema.ddl —
// rendered live from the graph's current PG state.
func (m *GraphManager) Export(id, name string, w io.Writer) error {
	gs, err := m.get(id)
	if err != nil {
		return err
	}
	gs.applyMu.Lock()
	defer gs.applyMu.Unlock()
	switch name {
	case "schema.ddl":
		_, err = io.WriteString(w, gs.state.SchemaDDL())
		return err
	case "nodes.csv":
		return gs.state.WriteCSV(w, io.Discard)
	case "edges.csv":
		return gs.state.WriteCSV(io.Discard, w)
	default:
		return fmt.Errorf("%w: no export %q (want nodes.csv, edges.csv, or schema.ddl)", ErrDeltaRejected, name)
	}
}

// EnterDrain wakes every long-polling subscriber so their handlers return
// and the HTTP listener can shut down; new updates and streams bounce with
// 503. Durable state is untouched — Close finishes the job.
func (m *GraphManager) EnterDrain() {
	m.mu.Lock()
	m.draining = true
	sessions := make([]*graphSession, 0, len(m.graphs))
	for _, gs := range m.graphs {
		if gs != nil {
			sessions = append(sessions, gs)
		}
	}
	m.mu.Unlock()
	for _, gs := range sessions {
		gs.histMu.Lock()
		gs.drain = true
		gs.histMu.Unlock()
		gs.cond.Broadcast()
	}
}

// Draining reports whether EnterDrain ran.
func (m *GraphManager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// Close drains and releases every session's WAL.
func (m *GraphManager) Close() error {
	m.EnterDrain()
	m.mu.Lock()
	defer m.mu.Unlock()
	var firstErr error
	for _, gs := range m.graphs {
		if gs == nil {
			continue
		}
		gs.applyMu.Lock()
		if err := gs.wlog.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		gs.applyMu.Unlock()
	}
	return firstErr
}

// Snapshot returns an immutable, queryable snapshot of the graph at its
// latest applied LSN. Fast path is two atomic loads and never blocks — a
// concurrent delta apply always leaves the previous snapshot intact, so
// readers see a consistent (if momentarily stale) view. A query issued
// after an Update's 202 sees at least that Update's LSN (read-your-writes):
// the LSN is published before the ack, so the fast path misses and the
// rebuild below runs against the post-apply state.
func (m *GraphManager) Snapshot(id string) (*serve.Snapshot, error) {
	gs, err := m.get(id)
	if err != nil {
		return nil, err
	}
	return gs.snapshot()
}

func (gs *graphSession) snapshot() (*serve.Snapshot, error) {
	if s := gs.snap.Load(); s != nil && s.LSN == gs.lsn.Load() {
		return s, nil
	}
	// Stale (or first) read: materialize under applyMu so the clone sees a
	// quiescent state. Queries pay this once per applied batch; the delta
	// path itself never clones.
	gs.applyMu.Lock()
	defer gs.applyMu.Unlock()
	if gs.broken != nil {
		// The in-memory state may be ahead of the durable log; refuse to
		// label it with an LSN. The previously published snapshot (if any)
		// keeps serving from the fast path above.
		return nil, fmt.Errorf("%w: %v", ErrGraphBroken, gs.broken)
	}
	lsn := gs.lsn.Load() // stable: applies hold applyMu
	if s := gs.snap.Load(); s != nil && s.LSN == lsn {
		return s, nil
	}
	s := serve.NewSnapshot(gs.state.Graph().Clone(), gs.state.Store().Clone(), gs.state.SchemaDDL(), lsn)
	gs.snap.Store(s)
	return s, nil
}

func (gs *graphSession) lastLSN() uint64 {
	gs.histMu.Lock()
	defer gs.histMu.Unlock()
	return gs.histBase + uint64(len(gs.hist))
}

// trimHistLocked drops deltas beyond the retention window from the front of
// hist, advancing histBase so LSN bookkeeping is unaffected. The trimmed
// prefix is reconstructed on demand by replayHistory. Caller holds histMu
// (or has exclusive access during load).
func (gs *graphSession) trimHistLocked() {
	if gs.histLimit <= 0 {
		return
	}
	if n := len(gs.hist) - gs.histLimit; n > 0 {
		// Copy the tail into a fresh slice so the trimmed deltas are actually
		// released rather than pinned by the old backing array.
		gs.hist = append(make([]*core.PGDelta, 0, len(gs.hist)-n), gs.hist[n:]...)
		gs.histBase += uint64(n)
	}
}

func (gs *graphSession) status() *GraphStatus {
	gs.applyMu.Lock()
	st := &GraphStatus{
		ID:          gs.id,
		Mode:        gs.mode.String(),
		Nodes:       gs.state.Store().NumNodes(),
		Edges:       gs.state.Store().NumEdges(),
		FastApplies: gs.state.FastApplies(),
		Rebuilds:    gs.state.Rebuilds(),
	}
	if gs.broken != nil {
		st.Broken = gs.broken.Error()
	}
	gs.applyMu.Unlock()
	st.LSN = gs.lastLSN()
	return st
}
