// Package server is the HTTP face of the s3pgd transform service: a thin,
// stdlib-only layer that translates requests into internal/jobs calls and
// jobs errors into status codes. All admission-control policy (queue bounds,
// memory watermark, circuit breaker, drain) lives in the jobs manager; the
// server's own state is a single lame-duck flag flipped at the start of a
// graceful shutdown so load balancers see /readyz fail before the listener
// closes.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"github.com/s3pg/s3pg/internal/dist"
	"github.com/s3pg/s3pg/internal/faultio"
	"github.com/s3pg/s3pg/internal/jobs"
	"github.com/s3pg/s3pg/internal/obs"
	"github.com/s3pg/s3pg/internal/serve"
)

// DefaultMaxBodyBytes caps request bodies (shapes + data are inlined in the
// submit payload) unless Config overrides it.
const DefaultMaxBodyBytes = 256 << 20

var (
	cReqSubmit  = obs.Default.Counter("server.req.submit")
	cReqStatus  = obs.Default.Counter("server.req.status")
	cReqRejects = obs.Default.Counter("server.req.rejected")
	gLameDuck   = obs.Default.Gauge("server.lameduck")
	gInflight   = obs.Default.Gauge("http.inflight")
)

// Config parameterizes a Server.
type Config struct {
	// Manager is the job service the server fronts. Required.
	Manager *jobs.Manager
	// MaxBodyBytes caps the submit payload. 0 means DefaultMaxBodyBytes.
	MaxBodyBytes int64
	// Log receives structured request-level log records. Nil discards them.
	Log *obs.Logger
	// RetryAfter is the hint returned with 429/503 responses. 0 means 1s.
	RetryAfter time.Duration
	// Version is reported in s3pgd_build_info. Empty means "dev".
	Version string
	// EnablePprof mounts net/http/pprof under /debug/pprof/ (off by
	// default: the profile endpoints expose internals and cost CPU).
	EnablePprof bool
	// ShardWorker, when non-nil, mounts POST /shards so this daemon can
	// serve shard scans for a distributed-transform coordinator. Shard
	// requests share the server's admission gates: a draining or shedding
	// daemon bounces them with 503 + Retry-After instead of taking on work
	// it is trying to get rid of.
	ShardWorker *dist.Worker
	// Graphs, when non-nil, mounts the live-graph surface: named graphs
	// under /graphs/{id} that accept SPARQL Update batches and stream the
	// resulting PG deltas to resumable subscribers.
	Graphs *GraphManager

	// QueryCacheBytes budgets the job-snapshot LRU cache behind POST /query
	// (approximate resident bytes). 0 means unlimited; the live-graph path
	// does not count against it (each live graph caches at most one
	// snapshot of its own).
	QueryCacheBytes int64
	// QueryMaxConcurrent bounds queries executing at once; 0 means 64.
	QueryMaxConcurrent int
	// QueryMaxQueue bounds callers waiting behind the execution slots
	// before new queries bounce with 429. 0 means 256; negative means no
	// waiting at all.
	QueryMaxQueue int
	// QueryTimeout is the per-query deadline ceiling (requests may ask for
	// less, never more). 0 means 30s.
	QueryTimeout time.Duration
	// QueryMaxRows caps rows returned per query (requests may ask for
	// less). 0 means 100000.
	QueryMaxRows int
}

// Server is an http.Handler serving the job API.
type Server struct {
	cfg        Config
	mux        *http.ServeMux
	handler    http.Handler // mux wrapped in the instrumentation middleware
	start      time.Time
	lameduck   atomic.Bool
	queryCache *serve.Cache
	queryGate  *serve.Gate
}

// New builds the handler. Routes:
//
//	POST /query             run Cypher (PG) or SPARQL (RDF) against a live
//	                        graph or a finished job's snapshot
//	POST /jobs              accept a transform job (202, or 400/413/429/503)
//	GET  /jobs              list jobs
//	GET  /jobs/{id}         job status
//	GET  /jobs/{id}/output/{name}  result file of a done job
//	GET  /healthz           liveness (200 while the process serves)
//	GET  /readyz            readiness (503 while draining/shedding)
//	GET  /metrics           obs registry + queue stats: JSON by default,
//	                        Prometheus text format when Accept: text/plain
//
// Every route runs behind the instrumentation middleware: request IDs,
// access logs, per-route latency histograms, in-flight gauge. With
// Config.EnablePprof the net/http/pprof handlers are mounted too.
func New(cfg Config) *Server {
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.Version == "" {
		cfg.Version = "dev"
	}
	if cfg.QueryMaxConcurrent <= 0 {
		cfg.QueryMaxConcurrent = 64
	}
	if cfg.QueryMaxQueue == 0 {
		cfg.QueryMaxQueue = 256
	} else if cfg.QueryMaxQueue < 0 {
		cfg.QueryMaxQueue = 0
	}
	if cfg.QueryTimeout <= 0 {
		cfg.QueryTimeout = 30 * time.Second
	}
	if cfg.QueryMaxRows <= 0 {
		cfg.QueryMaxRows = 100000
	}
	s := &Server{cfg: cfg, mux: http.NewServeMux(), start: time.Now()}
	s.queryCache = serve.NewCache(cfg.QueryCacheBytes)
	s.queryGate = serve.NewGate(cfg.QueryMaxConcurrent, cfg.QueryMaxQueue)
	s.mux.HandleFunc("POST /query", s.handleQuery)
	s.mux.HandleFunc("POST /jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /jobs", s.handleList)
	s.mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /jobs/{id}/output/{name}", s.handleOutput)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	if cfg.ShardWorker != nil {
		s.mux.HandleFunc("POST /shards", s.handleShard)
	}
	if cfg.Graphs != nil {
		s.mux.HandleFunc("PUT /graphs/{id}", s.handleGraphCreate)
		s.mux.HandleFunc("GET /graphs", s.handleGraphList)
		s.mux.HandleFunc("GET /graphs/{id}", s.handleGraphStatus)
		s.mux.HandleFunc("POST /graphs/{id}/update", s.handleGraphUpdate)
		s.mux.HandleFunc("GET /graphs/{id}/changes", s.handleGraphChanges)
		s.mux.HandleFunc("GET /graphs/{id}/output/{name}", s.handleGraphOutput)
	}
	if cfg.EnablePprof {
		obs.RegisterPprofHandlers(s.mux)
	}
	s.handler = s.instrument(s.mux)
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.handler.ServeHTTP(w, r) }

// EnterLameDuck flips /readyz to 503 ahead of the listener shutdown, giving
// load balancers a window to stop routing here before connections drop.
func (s *Server) EnterLameDuck() {
	if !s.lameduck.Swap(true) {
		gLameDuck.Set(1)
		s.cfg.Log.Info("lame_duck")
	}
}

// SubmitRequest is the POST /jobs payload. Shapes and data are inline
// documents (SHACL Turtle and N-Triples respectively), mirroring the CLI's
// two input files.
type SubmitRequest struct {
	Mode    string `json:"mode,omitempty"`
	Lenient bool   `json:"lenient,omitempty"`
	// Timeout bounds the job's running time, as a Go duration string
	// ("90s", "5m"). Empty means no limit.
	Timeout string `json:"timeout,omitempty"`
	Shapes  string `json:"shapes"`
	Data    string `json:"data"`
}

// errorBody is the uniform error payload.
type errorBody struct {
	Error string `json:"error"`
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		s.cfg.Log.Warn("response_encode_failed", "error", err)
	}
}

// retryAfterSeconds is the Retry-After hint for 429/503 responses: the static
// Config.RetryAfter floor, raised to the breaker's remaining cooldown when the
// manager is shedding because the commit breaker is open — retrying before
// that is guaranteed to be shed again. Always at least 1 second so distributed
// clients never busy-loop on a zero hint.
func (s *Server) retryAfterSeconds() int {
	d := s.cfg.RetryAfter
	if hint := s.cfg.Manager.RetryAfterHint(); hint > d {
		d = hint
	}
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

func (s *Server) setRetryAfter(w http.ResponseWriter) {
	w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
}

func (s *Server) writeError(w http.ResponseWriter, status int, err error) {
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		s.setRetryAfter(w)
		cReqRejects.Inc()
	}
	s.writeJSON(w, status, errorBody{Error: err.Error()})
}

// submitStatus maps a jobs admission error to its HTTP status.
func submitStatus(err error) int {
	switch {
	case errors.Is(err, jobs.ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, jobs.ErrMemPressure),
		errors.Is(err, jobs.ErrDraining),
		errors.Is(err, jobs.ErrBreakerOpen):
		return http.StatusServiceUnavailable
	case faultio.Transient(err):
		// A spool commit that exhausted its retry budget on transient
		// faults: the storage layer is struggling, not the request.
		return http.StatusServiceUnavailable
	case errors.Is(err, jobs.ErrInvalid):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	cReqSubmit.Inc()
	if s.lameduck.Load() {
		s.writeError(w, http.StatusServiceUnavailable, jobs.ErrDraining)
		return
	}
	var req SubmitRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.writeError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("body exceeds %d bytes", tooBig.Limit))
			return
		}
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("malformed request: %w", err))
		return
	}
	spec := jobs.Spec{Mode: req.Mode, Lenient: req.Lenient}
	if req.Timeout != "" {
		d, err := time.ParseDuration(req.Timeout)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("timeout: %w", err))
			return
		}
		spec.Timeout = d
	}
	j, err := s.cfg.Manager.Submit(spec, req.Shapes, req.Data)
	if err != nil {
		s.writeError(w, submitStatus(err), err)
		return
	}
	w.Header().Set("Location", "/jobs/"+j.ID)
	s.writeJSON(w, http.StatusAccepted, j)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	cReqStatus.Inc()
	s.writeJSON(w, http.StatusOK, s.cfg.Manager.List())
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	cReqStatus.Inc()
	j, err := s.cfg.Manager.Get(r.PathValue("id"))
	if err != nil {
		s.writeError(w, http.StatusNotFound, err)
		return
	}
	s.writeJSON(w, http.StatusOK, j)
}

func (s *Server) handleOutput(w http.ResponseWriter, r *http.Request) {
	cReqStatus.Inc()
	path, err := s.cfg.Manager.OutputPath(r.PathValue("id"), r.PathValue("name"))
	switch {
	case errors.Is(err, jobs.ErrUnknownJob):
		s.writeError(w, http.StatusNotFound, err)
		return
	case errors.Is(err, jobs.ErrInvalid):
		s.writeError(w, http.StatusConflict, err)
		return
	case err != nil:
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}
	f, err := os.Open(path)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}
	defer f.Close()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if _, err := io.Copy(w, f); err != nil {
		s.cfg.Log.Warn("output_stream_failed", "request_id", RequestID(r.Context()), "path", path, "error", err)
	}
}

// handleShard admits a coordinator's shard-scan request through the same
// gates as job submission, then hands it to the dist worker. The coordinator
// treats the resulting 503s exactly like a busy worker's: back off for
// Retry-After, try again or reroute.
func (s *Server) handleShard(w http.ResponseWriter, r *http.Request) {
	if s.lameduck.Load() {
		s.writeError(w, http.StatusServiceUnavailable, jobs.ErrDraining)
		return
	}
	if err := s.cfg.Manager.Ready(); err != nil {
		s.writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	s.cfg.ShardWorker.Handle(w, r)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.lameduck.Load() {
		s.setRetryAfter(w)
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "draining: lame duck\n")
		return
	}
	if err := s.cfg.Manager.Ready(); err != nil {
		s.setRetryAfter(w)
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintf(w, "not ready: %v\n", err)
		return
	}
	io.WriteString(w, "ready\n")
}

// metricsBody combines the obs registry snapshot with queue stats. Key order
// is deterministic: encoding/json sorts map keys, and the snapshot's own
// collections are maps (see TestMetricsJSONDeterministic).
type metricsBody struct {
	Jobs          jobs.Stats   `json:"jobs"`
	UptimeSeconds float64      `json:"uptime_seconds"`
	Metrics       obs.Snapshot `json:"metrics"`
}

// wantsPrometheus reports whether the Accept header asks for the text
// exposition format. JSON stays the default: only an explicit text/plain
// (or the versioned Prometheus media type) switches.
func wantsPrometheus(accept string) bool {
	return strings.Contains(accept, "text/plain")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if wantsPrometheus(r.Header.Get("Accept")) {
		snap := obs.Default.Snapshot()
		w.Header().Set("Content-Type", obs.PromContentType)
		err := snap.WritePrometheus(w, "s3pgd",
			obs.PromSeries{
				Name: "build_info", Value: 1, Type: "gauge",
				Help: "Build metadata (value is always 1).",
				Labels: [][2]string{
					{"version", s.cfg.Version},
					{"go_version", runtime.Version()},
				},
			},
			obs.PromSeries{
				Name: "uptime.seconds", Value: time.Since(s.start).Seconds(), Type: "gauge",
				Help: "Seconds since the server was constructed.",
			},
		)
		if err != nil {
			s.cfg.Log.Warn("metrics_write_failed", "error", err)
		}
		return
	}
	s.writeJSON(w, http.StatusOK, metricsBody{
		Jobs:          s.cfg.Manager.Stats(),
		UptimeSeconds: time.Since(s.start).Seconds(),
		Metrics:       obs.Default.Snapshot(),
	})
}
