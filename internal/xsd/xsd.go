// Package xsd implements the XML Schema datatype handling S3PG relies on:
// lexical validation, value parsing, value-space comparison, and the lossy
// coercion rules that the reimplemented baselines (NeoSemantics, rdf2pg)
// apply to heterogeneous property values.
package xsd

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"github.com/s3pg/s3pg/internal/rdf"
)

// ValueKind classifies the value space a datatype maps into.
type ValueKind uint8

// Value spaces supported by the engine.
const (
	KindString ValueKind = iota + 1
	KindInt
	KindFloat
	KindBool
	KindTime
)

// String returns a human-readable name for the value kind.
func (k ValueKind) String() string {
	switch k {
	case KindString:
		return "string"
	case KindInt:
		return "integer"
	case KindFloat:
		return "float"
	case KindBool:
		return "boolean"
	case KindTime:
		return "time"
	default:
		return fmt.Sprintf("ValueKind(%d)", uint8(k))
	}
}

// Value is a parsed literal value.
type Value struct {
	Kind ValueKind
	Str  string
	I    int64
	F    float64
	B    bool
	T    time.Time
}

// KindOf returns the value space of a datatype IRI. Unknown datatypes map to
// the string space (they validate trivially and compare lexically), matching
// how RDF stores treat unrecognized datatypes.
func KindOf(datatype string) ValueKind {
	switch datatype {
	case "", rdf.XSDString, rdf.RDFLangString, rdf.XSDAnyURI:
		return KindString
	case rdf.XSDInteger, rdf.XSDInt, rdf.XSDLong:
		return KindInt
	case rdf.XSDDecimal, rdf.XSDDouble, rdf.XSDFloat:
		return KindFloat
	case rdf.XSDBoolean:
		return KindBool
	case rdf.XSDDate, rdf.XSDDateTime, rdf.XSDGYear:
		return KindTime
	default:
		return KindString
	}
}

// IsNumeric reports whether the datatype maps to a numeric value space.
func IsNumeric(datatype string) bool {
	k := KindOf(datatype)
	return k == KindInt || k == KindFloat
}

// Parse parses a lexical form against a datatype IRI and returns its value.
func Parse(lexical, datatype string) (Value, error) {
	switch KindOf(datatype) {
	case KindInt:
		i, err := strconv.ParseInt(strings.TrimSpace(lexical), 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("xsd: %q is not a valid %s: %v", lexical, datatype, err)
		}
		return Value{Kind: KindInt, I: i}, nil
	case KindFloat:
		f, err := strconv.ParseFloat(strings.TrimSpace(lexical), 64)
		if err != nil {
			return Value{}, fmt.Errorf("xsd: %q is not a valid %s: %v", lexical, datatype, err)
		}
		return Value{Kind: KindFloat, F: f}, nil
	case KindBool:
		switch strings.TrimSpace(lexical) {
		case "true", "1":
			return Value{Kind: KindBool, B: true}, nil
		case "false", "0":
			return Value{Kind: KindBool, B: false}, nil
		}
		return Value{}, fmt.Errorf("xsd: %q is not a valid boolean", lexical)
	case KindTime:
		t, err := parseTime(strings.TrimSpace(lexical), datatype)
		if err != nil {
			return Value{}, err
		}
		return Value{Kind: KindTime, T: t}, nil
	default:
		return Value{Kind: KindString, Str: lexical}, nil
	}
}

func parseTime(lexical, datatype string) (time.Time, error) {
	var layouts []string
	switch datatype {
	case rdf.XSDDate:
		layouts = []string{"2006-01-02", "2006-01-02Z07:00"}
	case rdf.XSDDateTime:
		layouts = []string{"2006-01-02T15:04:05Z07:00", "2006-01-02T15:04:05"}
	case rdf.XSDGYear:
		layouts = []string{"2006"}
	}
	for _, l := range layouts {
		if t, err := time.Parse(l, lexical); err == nil {
			return t, nil
		}
	}
	return time.Time{}, fmt.Errorf("xsd: %q is not a valid %s", lexical, datatype)
}

// Valid reports whether a lexical form is valid for a datatype IRI.
func Valid(lexical, datatype string) bool {
	_, err := Parse(lexical, datatype)
	return err == nil
}

// Compare compares two values and returns -1, 0, or +1. Numeric values
// compare across int/float with promotion. Comparing values in unrelated
// value spaces returns an error (SPARQL type-error semantics).
func Compare(a, b Value) (int, error) {
	if a.Kind == KindInt && b.Kind == KindFloat {
		a = Value{Kind: KindFloat, F: float64(a.I)}
	}
	if a.Kind == KindFloat && b.Kind == KindInt {
		b = Value{Kind: KindFloat, F: float64(b.I)}
	}
	if a.Kind != b.Kind {
		return 0, fmt.Errorf("xsd: cannot compare %s with %s", a.Kind, b.Kind)
	}
	switch a.Kind {
	case KindString:
		return strings.Compare(a.Str, b.Str), nil
	case KindInt:
		switch {
		case a.I < b.I:
			return -1, nil
		case a.I > b.I:
			return 1, nil
		}
		return 0, nil
	case KindFloat:
		switch {
		case a.F < b.F:
			return -1, nil
		case a.F > b.F:
			return 1, nil
		}
		return 0, nil
	case KindBool:
		switch {
		case !a.B && b.B:
			return -1, nil
		case a.B && !b.B:
			return 1, nil
		}
		return 0, nil
	case KindTime:
		switch {
		case a.T.Before(b.T):
			return -1, nil
		case a.T.After(b.T):
			return 1, nil
		}
		return 0, nil
	}
	return 0, fmt.Errorf("xsd: uncomparable kind %s", a.Kind)
}

// Coerce attempts to convert a lexical form from one datatype to another,
// returning the converted lexical form and whether the conversion succeeded.
// These are the rules the baseline transformations use when forcing
// heterogeneous property values into a homogeneous array type:
//
//   - any value coerces to string (lexical form is kept);
//   - numeric lexicals coerce between numeric types when exact;
//   - everything else fails, and the baselines drop the value.
func Coerce(lexical, from, to string) (string, bool) {
	if from == to || KindOf(from) == KindOf(to) && KindOf(from) != KindTime {
		// Same value space (and not a time type with differing layouts):
		// must still be lexically valid for the target.
		if Valid(lexical, to) {
			return lexical, true
		}
		return "", false
	}
	switch KindOf(to) {
	case KindString:
		return lexical, true
	case KindInt:
		v, err := Parse(lexical, from)
		if err != nil {
			return "", false
		}
		switch v.Kind {
		case KindInt:
			return strconv.FormatInt(v.I, 10), true
		case KindFloat:
			if v.F == float64(int64(v.F)) {
				return strconv.FormatInt(int64(v.F), 10), true
			}
		case KindString:
			if i, err := strconv.ParseInt(strings.TrimSpace(v.Str), 10, 64); err == nil {
				return strconv.FormatInt(i, 10), true
			}
		}
		return "", false
	case KindFloat:
		v, err := Parse(lexical, from)
		if err != nil {
			return "", false
		}
		switch v.Kind {
		case KindInt:
			return strconv.FormatFloat(float64(v.I), 'g', -1, 64), true
		case KindFloat:
			return lexical, true
		case KindString:
			if f, err := strconv.ParseFloat(strings.TrimSpace(v.Str), 64); err == nil {
				return strconv.FormatFloat(f, 'g', -1, 64), true
			}
		}
		return "", false
	case KindBool:
		if Valid(lexical, rdf.XSDBoolean) {
			return lexical, true
		}
		return "", false
	case KindTime:
		if Valid(lexical, to) {
			return lexical, true
		}
		return "", false
	}
	return "", false
}

// ShortName returns a concise label for a datatype IRI (e.g. "STRING",
// "INTEGER", "DATE"), used as value-node labels in the transformed PG and
// as content-type names in PG-Schema.
func ShortName(datatype string) string {
	switch datatype {
	case "", rdf.XSDString:
		return "STRING"
	case rdf.RDFLangString:
		return "LANGSTRING"
	case rdf.XSDBoolean:
		return "BOOLEAN"
	case rdf.XSDInteger:
		return "INTEGER"
	case rdf.XSDInt:
		return "INT"
	case rdf.XSDLong:
		return "LONG"
	case rdf.XSDDecimal:
		return "DECIMAL"
	case rdf.XSDDouble:
		return "DOUBLE"
	case rdf.XSDFloat:
		return "FLOAT"
	case rdf.XSDDate:
		return "DATE"
	case rdf.XSDDateTime:
		return "DATETIME"
	case rdf.XSDGYear:
		return "YEAR"
	case rdf.XSDAnyURI:
		return "URI"
	default:
		// Fall back to the IRI local name, upper-cased.
		if i := strings.LastIndexAny(datatype, "#/"); i >= 0 && i+1 < len(datatype) {
			return strings.ToUpper(datatype[i+1:])
		}
		return strings.ToUpper(datatype)
	}
}

// FromShortName is the inverse of ShortName for the standard datatypes.
// Unknown names return the empty string.
func FromShortName(name string) string {
	switch strings.ToUpper(name) {
	case "STRING":
		return rdf.XSDString
	case "LANGSTRING":
		return rdf.RDFLangString
	case "BOOLEAN":
		return rdf.XSDBoolean
	case "INTEGER":
		return rdf.XSDInteger
	case "INT":
		return rdf.XSDInt
	case "LONG":
		return rdf.XSDLong
	case "DECIMAL":
		return rdf.XSDDecimal
	case "DOUBLE":
		return rdf.XSDDouble
	case "FLOAT":
		return rdf.XSDFloat
	case "DATE":
		return rdf.XSDDate
	case "DATETIME":
		return rdf.XSDDateTime
	case "YEAR", "GYEAR":
		return rdf.XSDGYear
	case "URI", "ANYURI":
		return rdf.XSDAnyURI
	default:
		return ""
	}
}
