package xsd

import (
	"strconv"
	"testing"
	"testing/quick"

	"github.com/s3pg/s3pg/internal/rdf"
)

func TestKindOf(t *testing.T) {
	cases := map[string]ValueKind{
		"":                 KindString,
		rdf.XSDString:      KindString,
		rdf.RDFLangString:  KindString,
		rdf.XSDInteger:     KindInt,
		rdf.XSDInt:         KindInt,
		rdf.XSDLong:        KindInt,
		rdf.XSDDecimal:     KindFloat,
		rdf.XSDDouble:      KindFloat,
		rdf.XSDFloat:       KindFloat,
		rdf.XSDBoolean:     KindBool,
		rdf.XSDDate:        KindTime,
		rdf.XSDDateTime:    KindTime,
		rdf.XSDGYear:       KindTime,
		"http://custom/dt": KindString,
	}
	for dt, want := range cases {
		if got := KindOf(dt); got != want {
			t.Errorf("KindOf(%q) = %v, want %v", dt, got, want)
		}
	}
}

func TestParseValid(t *testing.T) {
	cases := []struct {
		lex, dt string
		ok      bool
	}{
		{"42", rdf.XSDInteger, true},
		{" 42 ", rdf.XSDInteger, true},
		{"4.2", rdf.XSDInteger, false},
		{"abc", rdf.XSDInteger, false},
		{"4.2", rdf.XSDDouble, true},
		{"-1e3", rdf.XSDDouble, true},
		{"nope", rdf.XSDDouble, false},
		{"true", rdf.XSDBoolean, true},
		{"0", rdf.XSDBoolean, true},
		{"yes", rdf.XSDBoolean, false},
		{"2024-02-29", rdf.XSDDate, true},
		{"2023-02-29", rdf.XSDDate, false},
		{"2024-02-29T10:00:00Z", rdf.XSDDateTime, true},
		{"2024-02-29T10:00:00", rdf.XSDDateTime, true},
		{"1999", rdf.XSDGYear, true},
		{"March", rdf.XSDGYear, false},
		{"anything", rdf.XSDString, true},
		{"anything", "http://unknown/dt", true},
	}
	for _, c := range cases {
		if got := Valid(c.lex, c.dt); got != c.ok {
			t.Errorf("Valid(%q, %q) = %v, want %v", c.lex, c.dt, got, c.ok)
		}
	}
}

func TestCompare(t *testing.T) {
	mustCmp := func(a, b Value, want int) {
		t.Helper()
		got, err := Compare(a, b)
		if err != nil {
			t.Fatalf("Compare error: %v", err)
		}
		if got != want {
			t.Fatalf("Compare(%+v, %+v) = %d, want %d", a, b, got, want)
		}
	}
	i := func(n int64) Value { return Value{Kind: KindInt, I: n} }
	f := func(x float64) Value { return Value{Kind: KindFloat, F: x} }
	s := func(x string) Value { return Value{Kind: KindString, Str: x} }
	b := func(x bool) Value { return Value{Kind: KindBool, B: x} }

	mustCmp(i(1), i(2), -1)
	mustCmp(i(2), i(2), 0)
	mustCmp(i(3), i(2), 1)
	mustCmp(i(1), f(1.5), -1) // int/float promotion
	mustCmp(f(2.0), i(2), 0)
	mustCmp(s("a"), s("b"), -1)
	mustCmp(b(false), b(true), -1)

	d1, _ := Parse("2020-01-01", rdf.XSDDate)
	d2, _ := Parse("2021-01-01", rdf.XSDDate)
	mustCmp(d1, d2, -1)

	if _, err := Compare(s("a"), i(1)); err == nil {
		t.Fatal("expected type error comparing string with int")
	}
}

func TestCoerce(t *testing.T) {
	cases := []struct {
		lex, from, to string
		want          string
		ok            bool
	}{
		// Anything coerces to string keeping its lexical form.
		{"42", rdf.XSDInteger, rdf.XSDString, "42", true},
		{"2020-01-01", rdf.XSDDate, rdf.XSDString, "2020-01-01", true},
		// Numeric widening and exact narrowing.
		{"42", rdf.XSDInteger, rdf.XSDDouble, "42", true},
		{"42.0", rdf.XSDDouble, rdf.XSDInteger, "42", true},
		{"42.5", rdf.XSDDouble, rdf.XSDInteger, "", false},
		// String to number only when the lexical is numeric.
		{"17", rdf.XSDString, rdf.XSDInteger, "17", true},
		{"Tofer Brown", rdf.XSDString, rdf.XSDInteger, "", false},
		{"3.14", rdf.XSDString, rdf.XSDDouble, "3.14", true},
		// Incompatible spaces fail.
		{"2020-01-01", rdf.XSDDate, rdf.XSDInteger, "", false},
		{"abc", rdf.XSDString, rdf.XSDBoolean, "", false},
		{"true", rdf.XSDString, rdf.XSDBoolean, "true", true},
		// Same space passes through when valid.
		{"5", rdf.XSDInt, rdf.XSDInteger, "5", true},
	}
	for _, c := range cases {
		got, ok := Coerce(c.lex, c.from, c.to)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("Coerce(%q, %s, %s) = (%q, %v), want (%q, %v)",
				c.lex, ShortName(c.from), ShortName(c.to), got, ok, c.want, c.ok)
		}
	}
}

func TestShortNameRoundTrip(t *testing.T) {
	dts := []string{
		rdf.XSDString, rdf.XSDBoolean, rdf.XSDInteger, rdf.XSDDecimal,
		rdf.XSDDouble, rdf.XSDDate, rdf.XSDDateTime, rdf.XSDGYear, rdf.XSDAnyURI,
	}
	for _, dt := range dts {
		name := ShortName(dt)
		back := FromShortName(name)
		// int/long collapse to integer, float to double: check value space.
		if KindOf(back) != KindOf(dt) {
			t.Errorf("round trip %s -> %s -> %s changed value space", dt, name, back)
		}
	}
	if got := ShortName("http://example.org/vocab#temperature"); got != "TEMPERATURE" {
		t.Errorf("custom datatype short name = %q", got)
	}
	if FromShortName("NOSUCH") != "" {
		t.Error("unknown short name should map to empty string")
	}
}

// Property: coercion to string always succeeds and preserves the lexical form.
func TestQuickCoerceToString(t *testing.T) {
	f := func(n int64) bool {
		lex := strconv.FormatInt(n, 10)
		got, ok := Coerce(lex, rdf.XSDInteger, rdf.XSDString)
		return ok && got == lex
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: integer -> double -> integer round-trips exactly for values
// representable in a float64 mantissa.
func TestQuickNumericRoundTrip(t *testing.T) {
	f := func(n int32) bool {
		lex := strconv.FormatInt(int64(n), 10)
		d, ok := Coerce(lex, rdf.XSDInteger, rdf.XSDDouble)
		if !ok {
			return false
		}
		back, ok := Coerce(d, rdf.XSDDouble, rdf.XSDInteger)
		return ok && back == lex
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
