package rdf

import (
	"fmt"
	"sort"

	"github.com/s3pg/s3pg/internal/obs"
)

// Always-on encoding/index counters (obs.Default registry): terms interned
// into dictionaries, triples admitted into graphs, and posting-list entries
// appended across the subject/predicate/object indexes.
var (
	cDictTerms    = obs.Default.Counter("rdf.dict.terms")
	cGraphTriples = obs.Default.Counter("rdf.graph.triples")
	cIndexEntries = obs.Default.Counter("rdf.graph.index_entries")
)

// TermID is a dense dictionary id for an interned term.
type TermID uint32

// noID marks an absent dictionary entry.
const noID = ^TermID(0)

// Dict interns RDF terms to dense ids. A Dict may be shared between graphs
// (for example between two snapshots of an evolving KG) so that ids are
// comparable across them.
//
// A spilled dictionary (see Graph.Spill) keeps ids [0, base) in a disk
// arena and only terms interned afterwards in the resident tail; id
// assignment is identical either way.
type Dict struct {
	ids   map[Term]TermID // resident tail: term → id (all ids when unspilled)
	terms []Term          // resident tail: ids [base, base+len)
	arena *termArena      // disk-backed ids [0, base); nil when unspilled
	base  TermID          // arena term count; 0 when unspilled
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{ids: make(map[Term]TermID)}
}

// Intern returns the id for the term, assigning a fresh one if necessary.
func (d *Dict) Intern(t Term) TermID {
	if id, ok := d.ids[t]; ok {
		return id
	}
	if d.arena != nil {
		if id, ok := d.arena.lookup(t); ok {
			return id
		}
	}
	id := d.base + TermID(len(d.terms))
	d.ids[t] = id
	d.terms = append(d.terms, t)
	cDictTerms.Inc()
	return id
}

// Lookup returns the id for the term and whether it is interned.
func (d *Dict) Lookup(t Term) (TermID, bool) {
	if id, ok := d.ids[t]; ok {
		return id, true
	}
	if d.arena != nil {
		return d.arena.lookup(t)
	}
	return 0, false
}

// Term returns the term for an id. It panics on an out-of-range id,
// which always indicates a bug (ids are only produced by Intern).
func (d *Dict) Term(id TermID) Term {
	if d.arena != nil && id < d.base {
		return d.arena.term(id)
	}
	return d.terms[id-d.base]
}

// Len returns the number of interned terms.
func (d *Dict) Len() int { return int(d.base) + len(d.terms) }

// encTriple is a dictionary-encoded triple: 12 bytes, comparable.
type encTriple struct {
	s, p, o TermID
}

// Graph is a dictionary-encoded RDF graph indexed by subject, predicate,
// and object, supporting wildcard pattern matching for BGP evaluation.
// Graph is not safe for concurrent mutation (Spill counts as mutation);
// concurrent readers are safe once loading is complete, spilled or not.
//
// A spilled graph (see Spill) keeps slots [0, spill.slots) on disk and only
// slots admitted afterwards in the resident tail fields below; slot
// numbering, admission order, and duplicate semantics are identical either
// way, so spilling is invisible to every accessor.
type Graph struct {
	dict    *Dict
	triples []encTriple // resident tail (all slots when unspilled)
	dead    []bool      // tombstones for tail slots
	present map[encTriple]int32
	nDead   int // tombstone count across spilled and tail slots

	bySubj map[TermID][]int32
	byPred map[TermID][]int32
	byObj  map[TermID][]int32

	spill *graphSpill // disk-backed slots [0, spill.slots); nil when unspilled
}

// NewGraph returns an empty graph with a fresh dictionary.
func NewGraph() *Graph { return NewGraphWithDict(NewDict()) }

// NewGraphWithDict returns an empty graph sharing the given dictionary.
func NewGraphWithDict(d *Dict) *Graph {
	return &Graph{
		dict:    d,
		present: make(map[encTriple]int32),
		bySubj:  make(map[TermID][]int32),
		byPred:  make(map[TermID][]int32),
		byObj:   make(map[TermID][]int32),
	}
}

// Dict exposes the graph's term dictionary.
func (g *Graph) Dict() *Dict { return g.dict }

// Len returns the number of live triples.
func (g *Graph) Len() int { return g.numSlots() - g.nDead }

// Spill-aware internal accessors. Every method that used to touch
// g.triples/g.dead/g.present/g.by* directly goes through these, which is
// the entire integration surface of the out-of-core representation.

// spillBase returns the number of disk-resident slots.
func (g *Graph) spillBase() int {
	if g.spill == nil {
		return 0
	}
	return g.spill.slots
}

// numSlots returns the total slot count, spilled plus tail.
func (g *Graph) numSlots() int { return g.spillBase() + len(g.triples) }

// encAt returns the encoded triple in (global) slot i.
func (g *Graph) encAt(i int) encTriple {
	if sp := g.spill; sp != nil {
		if i < sp.slots {
			return sp.log.triple(i)
		}
		return g.triples[i-sp.slots]
	}
	return g.triples[i]
}

// slotDead reports whether (global) slot i is tombstoned.
func (g *Graph) slotDead(i int) bool {
	if sp := g.spill; sp != nil {
		if i < sp.slots {
			return sp.isDead(i)
		}
		return g.dead[i-sp.slots]
	}
	return g.dead[i]
}

// killSlot tombstones (global) slot i.
func (g *Graph) killSlot(i int) {
	if sp := g.spill; sp != nil && i < sp.slots {
		sp.setDead(i)
	} else {
		g.dead[i-g.spillBase()] = true
	}
	g.nDead++
}

// forEachSlot calls fn for every live slot in admission order until fn
// returns false. The spilled prefix streams page by page, so a full scan
// over an out-of-core graph keeps only one page resident at a time.
func (g *Graph) forEachSlot(fn func(slot int, e encTriple) bool) {
	if sp := g.spill; sp != nil {
		for pg := 0; pg < sp.log.numPages(); pg++ {
			base := pg * pageTriples
			for j, e := range sp.log.page(pg) {
				slot := base + j
				if sp.isDead(slot) {
					continue
				}
				if !fn(slot, e) {
					return
				}
			}
		}
	}
	base := g.spillBase()
	for i, e := range g.triples {
		if g.dead[i] {
			continue
		}
		if !fn(base+i, e) {
			return
		}
	}
}

// tailPost returns the resident tail posting map for index k (0=subject,
// 1=predicate, 2=object).
func (g *Graph) tailPost(k int) map[TermID][]int32 {
	switch k {
	case 0:
		return g.bySubj
	case 1:
		return g.byPred
	default:
		return g.byObj
	}
}

// postingFor returns the full posting list for id on index k, spilled part
// first (slots ascend across the concatenation, preserving the admission-
// order invariant). The result must not be mutated; it aliases cache or
// index state unless both parts are non-empty.
func (g *Graph) postingFor(k int, id TermID) []int32 {
	tail := g.tailPost(k)[id]
	if g.spill == nil {
		return tail
	}
	spilled := g.spill.post[k].posting(id)
	if len(tail) == 0 {
		return spilled
	}
	if len(spilled) == 0 {
		return tail
	}
	merged := make([]int32, 0, len(spilled)+len(tail))
	merged = append(merged, spilled...)
	return append(merged, tail...)
}

// slotOf finds the live slot holding e, consulting the tail's hash map
// first and falling back to a scan of the shortest spilled posting list
// (the spilled prefix has no resident hash: that is the point of spilling).
func (g *Graph) slotOf(e encTriple) (int32, bool) {
	if idx, ok := g.present[e]; ok {
		return idx, true
	}
	sp := g.spill
	if sp == nil {
		return 0, false
	}
	best := sp.post[0].posting(e.s)
	if l := sp.post[1].posting(e.p); len(l) < len(best) {
		best = l
	}
	if l := sp.post[2].posting(e.o); len(l) < len(best) {
		best = l
	}
	for _, idx := range best {
		if !sp.isDead(int(idx)) && sp.log.triple(int(idx)) == e {
			return idx, true
		}
	}
	return 0, false
}

// Add inserts a triple, returning false if it was already present.
// It panics on a malformed triple, which indicates a caller bug.
func (g *Graph) Add(t Triple) bool {
	if !t.Valid() {
		panic(fmt.Sprintf("rdf: invalid triple %v", t))
	}
	e := encTriple{g.dict.Intern(t.S), g.dict.Intern(t.P), g.dict.Intern(t.O)}
	return g.addEnc(e)
}

func (g *Graph) addEnc(e encTriple) bool {
	if _, ok := g.slotOf(e); ok {
		return false
	}
	idx := int32(g.numSlots())
	g.triples = append(g.triples, e)
	g.dead = append(g.dead, false)
	g.present[e] = idx
	g.bySubj[e.s] = append(g.bySubj[e.s], idx)
	g.byPred[e.p] = append(g.byPred[e.p], idx)
	g.byObj[e.o] = append(g.byObj[e.o], idx)
	cGraphTriples.Inc()
	cIndexEntries.Add(3)
	return true
}

// Remove deletes a triple, returning whether it was present. Removal uses
// tombstones; posting lists are compacted lazily by scans skipping them.
func (g *Graph) Remove(t Triple) bool {
	s, ok := g.dict.Lookup(t.S)
	if !ok {
		return false
	}
	p, ok := g.dict.Lookup(t.P)
	if !ok {
		return false
	}
	o, ok := g.dict.Lookup(t.O)
	if !ok {
		return false
	}
	e := encTriple{s, p, o}
	idx, ok := g.slotOf(e)
	if !ok {
		return false
	}
	delete(g.present, e) // no-op when the slot is spilled
	g.killSlot(int(idx))
	return true
}

// Has reports whether the triple is present.
func (g *Graph) Has(t Triple) bool {
	s, ok := g.dict.Lookup(t.S)
	if !ok {
		return false
	}
	p, ok := g.dict.Lookup(t.P)
	if !ok {
		return false
	}
	o, ok := g.dict.Lookup(t.O)
	if !ok {
		return false
	}
	_, ok = g.slotOf(encTriple{s, p, o})
	return ok
}

// decode turns an encoded triple back into terms.
func (g *Graph) decode(e encTriple) Triple {
	return Triple{S: g.dict.Term(e.s), P: g.dict.Term(e.p), O: g.dict.Term(e.o)}
}

// ForEach calls fn for every live triple until fn returns false.
//
// Iteration order is the graph's admission order: the order of the Add calls
// that first inserted each currently-live triple. Remove tombstones a triple
// without shifting the survivors, and re-adding a removed triple admits it
// anew at the end of the order (its old slot stays dead). Triples, Match's
// scan paths, ForEachEncoded, and the posting-list indexes all observe this
// same order; the parallel ingest and transform merges depend on it.
func (g *Graph) ForEach(fn func(Triple) bool) {
	g.forEachSlot(func(_ int, e encTriple) bool {
		return fn(g.decode(e))
	})
}

// Triples returns all live triples in admission order (see ForEach for the
// exact order guarantee under interleaved Add/Remove).
func (g *Graph) Triples() []Triple {
	out := make([]Triple, 0, g.Len())
	g.ForEach(func(t Triple) bool {
		out = append(out, t)
		return true
	})
	return out
}

// Match iterates every live triple matching the pattern; nil components are
// wildcards. It selects the most selective available index and stops early
// when fn returns false.
func (g *Graph) Match(s, p, o *Term, fn func(Triple) bool) {
	var se, pe, oe = noID, noID, noID
	if s != nil {
		id, ok := g.dict.Lookup(*s)
		if !ok {
			return
		}
		se = id
	}
	if p != nil {
		id, ok := g.dict.Lookup(*p)
		if !ok {
			return
		}
		pe = id
	}
	if o != nil {
		id, ok := g.dict.Lookup(*o)
		if !ok {
			return
		}
		oe = id
	}
	g.matchEnc(se, pe, oe, fn)
}

func (g *Graph) matchEnc(se, pe, oe TermID, fn func(Triple) bool) {
	// Fully bound: hash (or spilled posting-intersection) lookup.
	if se != noID && pe != noID && oe != noID {
		e := encTriple{se, pe, oe}
		if _, ok := g.slotOf(e); ok {
			fn(g.decode(e))
		}
		return
	}
	list, bound := g.candidateList(se, pe, oe)
	if !bound {
		// No bound component: full scan.
		g.forEachSlot(func(_ int, e encTriple) bool {
			return fn(g.decode(e))
		})
		return
	}
	for _, idx := range list {
		if g.slotDead(int(idx)) {
			continue
		}
		e := g.encAt(int(idx))
		if se != noID && e.s != se {
			continue
		}
		if pe != noID && e.p != pe {
			continue
		}
		if oe != noID && e.o != oe {
			continue
		}
		if !fn(g.decode(e)) {
			return
		}
	}
}

// candidateList picks the shortest posting list among the bound components.
// The second result reports whether any component was bound; when it is true
// the returned list (possibly empty) is authoritative.
func (g *Graph) candidateList(se, pe, oe TermID) ([]int32, bool) {
	var best []int32
	have := false
	consider := func(k int, id TermID, bound bool) {
		if !bound {
			return
		}
		l := g.postingFor(k, id)
		if !have || len(l) < len(best) {
			best, have = l, true
		}
	}
	consider(0, se, se != noID)
	consider(2, oe, oe != noID)
	consider(1, pe, pe != noID)
	return best, have
}

// MatchCount returns the number of live triples matching the pattern.
func (g *Graph) MatchCount(s, p, o *Term) int {
	n := 0
	g.Match(s, p, o, func(Triple) bool { n++; return true })
	return n
}

// Objects returns the distinct objects of triples with the given subject and
// predicate, in first-seen order.
func (g *Graph) Objects(s, p Term) []Term {
	var out []Term
	seen := make(map[Term]struct{})
	g.Match(&s, &p, nil, func(t Triple) bool {
		if _, ok := seen[t.O]; !ok {
			seen[t.O] = struct{}{}
			out = append(out, t.O)
		}
		return true
	})
	return out
}

// Subjects returns the distinct subjects of triples with the given predicate
// and object, in first-seen order.
func (g *Graph) Subjects(p, o Term) []Term {
	var out []Term
	seen := make(map[Term]struct{})
	g.Match(nil, &p, &o, func(t Triple) bool {
		if _, ok := seen[t.S]; !ok {
			seen[t.S] = struct{}{}
			out = append(out, t.S)
		}
		return true
	})
	return out
}

// TypesOf returns the rdf:type objects of the entity.
func (g *Graph) TypesOf(e Term) []Term { return g.Objects(e, A) }

// InstancesOf returns the entities typed with the given class.
func (g *Graph) InstancesOf(class Term) []Term { return g.Subjects(A, class) }

// Classes returns all distinct class IRIs: objects of rdf:type plus subjects
// and objects of rdfs:subClassOf, sorted by IRI.
func (g *Graph) Classes() []Term {
	seen := make(map[Term]struct{})
	typeP := A
	g.Match(nil, &typeP, nil, func(t Triple) bool {
		if t.O.IsIRI() {
			seen[t.O] = struct{}{}
		}
		return true
	})
	sub := NewIRI(RDFSSubClassOf)
	g.Match(nil, &sub, nil, func(t Triple) bool {
		if t.S.IsIRI() {
			seen[t.S] = struct{}{}
		}
		if t.O.IsIRI() {
			seen[t.O] = struct{}{}
		}
		return true
	})
	out := make([]Term, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Value < out[j].Value })
	return out
}

// Predicates returns all distinct predicate IRIs, sorted.
func (g *Graph) Predicates() []Term {
	seen := make(map[TermID]struct{})
	g.forEachSlot(func(_ int, e encTriple) bool {
		seen[e.p] = struct{}{}
		return true
	})
	out := make([]Term, 0, len(seen))
	for id := range seen {
		out = append(out, g.dict.Term(id))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Value < out[j].Value })
	return out
}

// SuperClasses returns the transitive rdfs:subClassOf closure of the class,
// excluding the class itself.
func (g *Graph) SuperClasses(class Term) []Term {
	sub := NewIRI(RDFSSubClassOf)
	var out []Term
	seen := map[Term]struct{}{class: {}}
	work := []Term{class}
	for len(work) > 0 {
		c := work[len(work)-1]
		work = work[:len(work)-1]
		for _, sup := range g.Objects(c, sub) {
			if _, ok := seen[sup]; ok {
				continue
			}
			seen[sup] = struct{}{}
			out = append(out, sup)
			work = append(work, sup)
		}
	}
	return out
}

// IsInstanceOf reports whether e has type class directly or via a subclass.
func (g *Graph) IsInstanceOf(e, class Term) bool {
	for _, t := range g.TypesOf(e) {
		if t == class {
			return true
		}
		for _, sup := range g.SuperClasses(t) {
			if sup == class {
				return true
			}
		}
	}
	return false
}

// AddAll inserts every triple of other into g, returning the number added.
func (g *Graph) AddAll(other *Graph) int {
	n := 0
	other.ForEach(func(t Triple) bool {
		if g.Add(t) {
			n++
		}
		return true
	})
	return n
}

// Clone returns a deep logical copy: mutations on either side are invisible
// to the other. For a resident graph it re-interns into a fresh dictionary
// (compacting tombstones, as before). For a spilled graph it shares the
// immutable on-disk generation — paying only for the resident tail and the
// tombstone bitset — so snapshotting an out-of-core graph stays cheap; slot
// indexes and term ids are preserved in that case.
func (g *Graph) Clone() *Graph {
	if g.spill == nil {
		c := NewGraph()
		c.AddAll(g)
		return c
	}
	d := &Dict{
		ids:   make(map[Term]TermID, len(g.dict.ids)),
		terms: append([]Term(nil), g.dict.terms...),
		arena: g.dict.arena,
		base:  g.dict.base,
	}
	for t, id := range g.dict.ids {
		d.ids[t] = id
	}
	c := &Graph{
		dict:    d,
		triples: append([]encTriple(nil), g.triples...),
		dead:    append([]bool(nil), g.dead...),
		present: make(map[encTriple]int32, len(g.present)),
		nDead:   g.nDead,
		bySubj:  clonePostings(g.bySubj),
		byPred:  clonePostings(g.byPred),
		byObj:   clonePostings(g.byObj),
		spill:   g.spill.share(),
	}
	for e, idx := range g.present {
		c.present[e] = idx
	}
	return c
}

func clonePostings(m map[TermID][]int32) map[TermID][]int32 {
	out := make(map[TermID][]int32, len(m))
	for k, v := range m {
		out[k] = append([]int32(nil), v...)
	}
	return out
}

// Equal reports whether two graphs contain exactly the same triple set.
// (Blank node labels are compared literally; the transformation pipeline
// never relabels blank nodes, so literal comparison is the correct notion
// of equality for round-trip tests.)
func (g *Graph) Equal(other *Graph) bool {
	if g.Len() != other.Len() {
		return false
	}
	eq := true
	g.ForEach(func(t Triple) bool {
		if !other.Has(t) {
			eq = false
			return false
		}
		return true
	})
	return eq
}
