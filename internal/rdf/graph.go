package rdf

import (
	"fmt"
	"sort"

	"github.com/s3pg/s3pg/internal/obs"
)

// Always-on encoding/index counters (obs.Default registry): terms interned
// into dictionaries, triples admitted into graphs, and posting-list entries
// appended across the subject/predicate/object indexes.
var (
	cDictTerms    = obs.Default.Counter("rdf.dict.terms")
	cGraphTriples = obs.Default.Counter("rdf.graph.triples")
	cIndexEntries = obs.Default.Counter("rdf.graph.index_entries")
)

// TermID is a dense dictionary id for an interned term.
type TermID uint32

// noID marks an absent dictionary entry.
const noID = ^TermID(0)

// Dict interns RDF terms to dense ids. A Dict may be shared between graphs
// (for example between two snapshots of an evolving KG) so that ids are
// comparable across them.
type Dict struct {
	ids   map[Term]TermID
	terms []Term
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{ids: make(map[Term]TermID)}
}

// Intern returns the id for the term, assigning a fresh one if necessary.
func (d *Dict) Intern(t Term) TermID {
	if id, ok := d.ids[t]; ok {
		return id
	}
	id := TermID(len(d.terms))
	d.ids[t] = id
	d.terms = append(d.terms, t)
	cDictTerms.Inc()
	return id
}

// Lookup returns the id for the term and whether it is interned.
func (d *Dict) Lookup(t Term) (TermID, bool) {
	id, ok := d.ids[t]
	return id, ok
}

// Term returns the term for an id. It panics on an out-of-range id,
// which always indicates a bug (ids are only produced by Intern).
func (d *Dict) Term(id TermID) Term { return d.terms[id] }

// Len returns the number of interned terms.
func (d *Dict) Len() int { return len(d.terms) }

// encTriple is a dictionary-encoded triple: 12 bytes, comparable.
type encTriple struct {
	s, p, o TermID
}

// Graph is an in-memory RDF graph. Triples are dictionary encoded and
// indexed by subject, predicate, and object, supporting wildcard pattern
// matching for BGP evaluation. Graph is not safe for concurrent mutation;
// concurrent readers are safe once loading is complete.
type Graph struct {
	dict    *Dict
	triples []encTriple
	dead    []bool // tombstones for removed triples
	present map[encTriple]int32
	nDead   int

	bySubj map[TermID][]int32
	byPred map[TermID][]int32
	byObj  map[TermID][]int32
}

// NewGraph returns an empty graph with a fresh dictionary.
func NewGraph() *Graph { return NewGraphWithDict(NewDict()) }

// NewGraphWithDict returns an empty graph sharing the given dictionary.
func NewGraphWithDict(d *Dict) *Graph {
	return &Graph{
		dict:    d,
		present: make(map[encTriple]int32),
		bySubj:  make(map[TermID][]int32),
		byPred:  make(map[TermID][]int32),
		byObj:   make(map[TermID][]int32),
	}
}

// Dict exposes the graph's term dictionary.
func (g *Graph) Dict() *Dict { return g.dict }

// Len returns the number of live triples.
func (g *Graph) Len() int { return len(g.triples) - g.nDead }

// Add inserts a triple, returning false if it was already present.
// It panics on a malformed triple, which indicates a caller bug.
func (g *Graph) Add(t Triple) bool {
	if !t.Valid() {
		panic(fmt.Sprintf("rdf: invalid triple %v", t))
	}
	e := encTriple{g.dict.Intern(t.S), g.dict.Intern(t.P), g.dict.Intern(t.O)}
	return g.addEnc(e)
}

func (g *Graph) addEnc(e encTriple) bool {
	if _, ok := g.present[e]; ok {
		return false
	}
	idx := int32(len(g.triples))
	g.triples = append(g.triples, e)
	g.dead = append(g.dead, false)
	g.present[e] = idx
	g.bySubj[e.s] = append(g.bySubj[e.s], idx)
	g.byPred[e.p] = append(g.byPred[e.p], idx)
	g.byObj[e.o] = append(g.byObj[e.o], idx)
	cGraphTriples.Inc()
	cIndexEntries.Add(3)
	return true
}

// Remove deletes a triple, returning whether it was present. Removal uses
// tombstones; posting lists are compacted lazily by scans skipping them.
func (g *Graph) Remove(t Triple) bool {
	s, ok := g.dict.Lookup(t.S)
	if !ok {
		return false
	}
	p, ok := g.dict.Lookup(t.P)
	if !ok {
		return false
	}
	o, ok := g.dict.Lookup(t.O)
	if !ok {
		return false
	}
	e := encTriple{s, p, o}
	idx, ok := g.present[e]
	if !ok {
		return false
	}
	delete(g.present, e)
	g.dead[idx] = true
	g.nDead++
	return true
}

// Has reports whether the triple is present.
func (g *Graph) Has(t Triple) bool {
	s, ok := g.dict.Lookup(t.S)
	if !ok {
		return false
	}
	p, ok := g.dict.Lookup(t.P)
	if !ok {
		return false
	}
	o, ok := g.dict.Lookup(t.O)
	if !ok {
		return false
	}
	_, ok = g.present[encTriple{s, p, o}]
	return ok
}

// decode turns an encoded triple back into terms.
func (g *Graph) decode(e encTriple) Triple {
	return Triple{S: g.dict.Term(e.s), P: g.dict.Term(e.p), O: g.dict.Term(e.o)}
}

// ForEach calls fn for every live triple until fn returns false.
//
// Iteration order is the graph's admission order: the order of the Add calls
// that first inserted each currently-live triple. Remove tombstones a triple
// without shifting the survivors, and re-adding a removed triple admits it
// anew at the end of the order (its old slot stays dead). Triples, Match's
// scan paths, ForEachEncoded, and the posting-list indexes all observe this
// same order; the parallel ingest and transform merges depend on it.
func (g *Graph) ForEach(fn func(Triple) bool) {
	for i, e := range g.triples {
		if g.dead[i] {
			continue
		}
		if !fn(g.decode(e)) {
			return
		}
	}
}

// Triples returns all live triples in admission order (see ForEach for the
// exact order guarantee under interleaved Add/Remove).
func (g *Graph) Triples() []Triple {
	out := make([]Triple, 0, g.Len())
	g.ForEach(func(t Triple) bool {
		out = append(out, t)
		return true
	})
	return out
}

// Match iterates every live triple matching the pattern; nil components are
// wildcards. It selects the most selective available index and stops early
// when fn returns false.
func (g *Graph) Match(s, p, o *Term, fn func(Triple) bool) {
	var se, pe, oe = noID, noID, noID
	if s != nil {
		id, ok := g.dict.Lookup(*s)
		if !ok {
			return
		}
		se = id
	}
	if p != nil {
		id, ok := g.dict.Lookup(*p)
		if !ok {
			return
		}
		pe = id
	}
	if o != nil {
		id, ok := g.dict.Lookup(*o)
		if !ok {
			return
		}
		oe = id
	}
	g.matchEnc(se, pe, oe, fn)
}

func (g *Graph) matchEnc(se, pe, oe TermID, fn func(Triple) bool) {
	// Fully bound: hash lookup.
	if se != noID && pe != noID && oe != noID {
		e := encTriple{se, pe, oe}
		if _, ok := g.present[e]; ok {
			fn(g.decode(e))
		}
		return
	}
	list, bound := g.candidateList(se, pe, oe)
	if !bound {
		// No bound component: full scan.
		for i, e := range g.triples {
			if g.dead[i] {
				continue
			}
			if !fn(g.decode(e)) {
				return
			}
		}
		return
	}
	for _, idx := range list {
		if g.dead[idx] {
			continue
		}
		e := g.triples[idx]
		if se != noID && e.s != se {
			continue
		}
		if pe != noID && e.p != pe {
			continue
		}
		if oe != noID && e.o != oe {
			continue
		}
		if !fn(g.decode(e)) {
			return
		}
	}
}

// candidateList picks the shortest posting list among the bound components.
// The second result reports whether any component was bound; when it is true
// the returned list (possibly empty) is authoritative.
func (g *Graph) candidateList(se, pe, oe TermID) ([]int32, bool) {
	var best []int32
	have := false
	consider := func(l []int32, bound bool) {
		if !bound {
			return
		}
		if !have || len(l) < len(best) {
			best, have = l, true
		}
	}
	consider(g.bySubj[se], se != noID)
	consider(g.byObj[oe], oe != noID)
	consider(g.byPred[pe], pe != noID)
	return best, have
}

// MatchCount returns the number of live triples matching the pattern.
func (g *Graph) MatchCount(s, p, o *Term) int {
	n := 0
	g.Match(s, p, o, func(Triple) bool { n++; return true })
	return n
}

// Objects returns the distinct objects of triples with the given subject and
// predicate, in first-seen order.
func (g *Graph) Objects(s, p Term) []Term {
	var out []Term
	seen := make(map[Term]struct{})
	g.Match(&s, &p, nil, func(t Triple) bool {
		if _, ok := seen[t.O]; !ok {
			seen[t.O] = struct{}{}
			out = append(out, t.O)
		}
		return true
	})
	return out
}

// Subjects returns the distinct subjects of triples with the given predicate
// and object, in first-seen order.
func (g *Graph) Subjects(p, o Term) []Term {
	var out []Term
	seen := make(map[Term]struct{})
	g.Match(nil, &p, &o, func(t Triple) bool {
		if _, ok := seen[t.S]; !ok {
			seen[t.S] = struct{}{}
			out = append(out, t.S)
		}
		return true
	})
	return out
}

// TypesOf returns the rdf:type objects of the entity.
func (g *Graph) TypesOf(e Term) []Term { return g.Objects(e, A) }

// InstancesOf returns the entities typed with the given class.
func (g *Graph) InstancesOf(class Term) []Term { return g.Subjects(A, class) }

// Classes returns all distinct class IRIs: objects of rdf:type plus subjects
// and objects of rdfs:subClassOf, sorted by IRI.
func (g *Graph) Classes() []Term {
	seen := make(map[Term]struct{})
	typeP := A
	g.Match(nil, &typeP, nil, func(t Triple) bool {
		if t.O.IsIRI() {
			seen[t.O] = struct{}{}
		}
		return true
	})
	sub := NewIRI(RDFSSubClassOf)
	g.Match(nil, &sub, nil, func(t Triple) bool {
		if t.S.IsIRI() {
			seen[t.S] = struct{}{}
		}
		if t.O.IsIRI() {
			seen[t.O] = struct{}{}
		}
		return true
	})
	out := make([]Term, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Value < out[j].Value })
	return out
}

// Predicates returns all distinct predicate IRIs, sorted.
func (g *Graph) Predicates() []Term {
	seen := make(map[TermID]struct{})
	for i, e := range g.triples {
		if g.dead[i] {
			continue
		}
		seen[e.p] = struct{}{}
	}
	out := make([]Term, 0, len(seen))
	for id := range seen {
		out = append(out, g.dict.Term(id))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Value < out[j].Value })
	return out
}

// SuperClasses returns the transitive rdfs:subClassOf closure of the class,
// excluding the class itself.
func (g *Graph) SuperClasses(class Term) []Term {
	sub := NewIRI(RDFSSubClassOf)
	var out []Term
	seen := map[Term]struct{}{class: {}}
	work := []Term{class}
	for len(work) > 0 {
		c := work[len(work)-1]
		work = work[:len(work)-1]
		for _, sup := range g.Objects(c, sub) {
			if _, ok := seen[sup]; ok {
				continue
			}
			seen[sup] = struct{}{}
			out = append(out, sup)
			work = append(work, sup)
		}
	}
	return out
}

// IsInstanceOf reports whether e has type class directly or via a subclass.
func (g *Graph) IsInstanceOf(e, class Term) bool {
	for _, t := range g.TypesOf(e) {
		if t == class {
			return true
		}
		for _, sup := range g.SuperClasses(t) {
			if sup == class {
				return true
			}
		}
	}
	return false
}

// AddAll inserts every triple of other into g, returning the number added.
func (g *Graph) AddAll(other *Graph) int {
	n := 0
	other.ForEach(func(t Triple) bool {
		if g.Add(t) {
			n++
		}
		return true
	})
	return n
}

// Clone returns a deep copy of the graph with its own dictionary.
func (g *Graph) Clone() *Graph {
	c := NewGraph()
	c.AddAll(g)
	return c
}

// Equal reports whether two graphs contain exactly the same triple set.
// (Blank node labels are compared literally; the transformation pipeline
// never relabels blank nodes, so literal comparison is the correct notion
// of equality for round-trip tests.)
func (g *Graph) Equal(other *Graph) bool {
	if g.Len() != other.Len() {
		return false
	}
	eq := true
	g.ForEach(func(t Triple) bool {
		if !other.Has(t) {
			eq = false
			return false
		}
		return true
	})
	return eq
}
