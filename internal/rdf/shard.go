package rdf

import (
	"sync"

	"github.com/s3pg/s3pg/internal/obs"
)

// cShardContention counts lock-acquisition conflicts on sharded-dictionary
// shards: each increment is one Intern call that found its shard lock held
// and had to wait. A high ratio of contention to staged terms means the term
// hash is not spreading load (or workers vastly outnumber shards).
var cShardContention = obs.Default.Counter("rdf.sharddict.contention")

const (
	// shardBits fixes the shard count. 64 shards keep the expected
	// worker-collision probability low for any realistic worker count while
	// each shard's map stays large enough to amortize its overhead.
	shardBits = 6
	numShards = 1 << shardBits
	// maxShardTerms bounds per-shard term counts so a ProvID's shard-local
	// index always fits in the bits above the shard tag.
	maxShardTerms = 1 << (32 - shardBits)
)

// ProvID is a provisional term id handed out by a ShardedDict. Provisional
// ids are stable and comparable within one ShardedDict, but they are neither
// dense nor equal to sequential Dict ids: the shard tag occupies the low
// shardBits and the shard-local index the bits above. A Denser remaps them to
// dense TermIDs in first-occurrence order of the merged stream.
type ProvID uint32

// ShardedDict is a lock-striped term interner for parallel ingest. Terms are
// hash-partitioned across numShards shards, each with its own mutex, map,
// and append-only term slice, so workers interning different terms rarely
// contend. It is safe for concurrent use.
//
// A ShardedDict is a staging structure: it hands out ProvIDs during the
// parallel scan, and a Denser later remaps those to dense TermIDs in the
// order the merged triple stream first references them — reproducing exactly
// the ids a sequential Dict would have assigned, which is what keeps encoded
// ids (and everything keyed on them, snapshots and checkpoints included)
// byte-identical to workers=1. The rdf.dict.terms counter is fed during that
// remap (via Dict.Intern), not here, so parallel and sequential ingest report
// identical term counts.
type ShardedDict struct {
	shards [numShards]dictShard
}

type dictShard struct {
	mu    sync.Mutex
	ids   map[Term]uint32
	terms []Term
	_     [24]byte // pad to a cache line so neighbouring locks do not false-share
}

// NewShardedDict returns an empty sharded dictionary.
func NewShardedDict() *ShardedDict {
	d := &ShardedDict{}
	for i := range d.shards {
		d.shards[i].ids = make(map[Term]uint32)
	}
	return d
}

// Intern returns the provisional id for the term, assigning a fresh one on
// first sight. Safe for concurrent use.
func (d *ShardedDict) Intern(t Term) ProvID {
	shard := termShard(t)
	sh := &d.shards[shard]
	if !sh.mu.TryLock() {
		cShardContention.Inc()
		sh.mu.Lock()
	}
	local, ok := sh.ids[t]
	if !ok {
		local = uint32(len(sh.terms))
		if local >= maxShardTerms {
			sh.mu.Unlock()
			panic("rdf: sharded dictionary shard overflow")
		}
		sh.ids[t] = local
		sh.terms = append(sh.terms, t)
	}
	sh.mu.Unlock()
	return ProvID(local<<shardBits | shard)
}

// Len returns the number of staged terms. It locks every shard, so it is
// exact even while workers intern concurrently — but the count is of course
// stale the moment it returns.
func (d *ShardedDict) Len() int {
	n := 0
	for i := range d.shards {
		sh := &d.shards[i]
		sh.mu.Lock()
		n += len(sh.terms)
		sh.mu.Unlock()
	}
	return n
}

// termShard hashes a term to its shard with FNV-1a over all identity fields
// (0x1f separators keep ("ab","c") and ("a","bc") apart).
func termShard(t Term) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	h = (h ^ uint32(t.Kind)) * prime32
	for i := 0; i < len(t.Value); i++ {
		h = (h ^ uint32(t.Value[i])) * prime32
	}
	h = (h ^ 0x1f) * prime32
	for i := 0; i < len(t.Datatype); i++ {
		h = (h ^ uint32(t.Datatype[i])) * prime32
	}
	h = (h ^ 0x1f) * prime32
	for i := 0; i < len(t.Lang); i++ {
		h = (h ^ uint32(t.Lang[i])) * prime32
	}
	// Fold the high bits down: FNV's low bits alone cluster for short keys.
	h ^= h >> 16
	return h & (numShards - 1)
}

// Denser remaps provisional ids to dense TermIDs in first-occurrence order.
// Walking the merged triple stream in its deterministic order and calling
// Dense on each component assigns TermIDs exactly as sequential ingestion
// (Dict.Intern per parsed term, in stream order) would.
//
// Denser is single-goroutine by design: the remap IS the order-defining
// merge step, so there is nothing to parallelize.
type Denser struct {
	sd    *ShardedDict
	dense [numShards][]TermID
	dict  *Dict
}

// NewDenser prepares a remap of the sharded dictionary's current contents
// into a fresh Dict. The ShardedDict must not be interned into anymore.
func NewDenser(sd *ShardedDict) *Denser { return NewDenserInto(sd, NewDict()) }

// NewDenserInto remaps into an existing dictionary (for example one shared
// with a previous snapshot), mirroring sequential ingest into a shared Dict:
// already-interned terms keep their ids, new terms extend the dictionary.
func NewDenserInto(sd *ShardedDict, d *Dict) *Denser {
	dn := &Denser{sd: sd, dict: d}
	for i := range dn.dense {
		n := len(sd.shards[i].terms)
		if n == 0 {
			continue
		}
		dense := make([]TermID, n)
		for j := range dense {
			dense[j] = noID
		}
		dn.dense[i] = dense
	}
	return dn
}

// Dense returns the dense id for a provisional id, interning the term into
// the target dictionary on first sight.
func (dn *Denser) Dense(p ProvID) TermID {
	shard, local := p&(numShards-1), p>>shardBits
	if id := dn.dense[shard][local]; id != noID {
		return id
	}
	id := dn.dict.Intern(dn.sd.shards[shard].terms[local])
	dn.dense[shard][local] = id
	return id
}

// Dict returns the target dictionary.
func (dn *Denser) Dict() *Dict { return dn.dict }
