package rdf

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
)

// spillFixture builds a deterministic graph of n subjects with typed, lang,
// plain-literal and IRI-object triples plus some duplicates, exercising every
// term kind and both dense (rdf:type) and sparse posting lists.
func spillFixture(n int) *Graph {
	g := NewGraph()
	cls := ex("Person")
	name := ex("name")
	knows := ex("knows")
	age := ex("age")
	for i := 0; i < n; i++ {
		s := ex(fmt.Sprintf("p%d", i))
		g.Add(NewTriple(s, A, cls))
		g.Add(NewTriple(s, name, NewLangLiteral(fmt.Sprintf("name %d", i), "en")))
		g.Add(NewTriple(s, age, NewTypedLiteral(fmt.Sprintf("%d", 20+i%50), XSDInteger)))
		g.Add(NewTriple(s, knows, ex(fmt.Sprintf("p%d", (i+1)%n))))
		g.Add(NewTriple(s, A, cls)) // duplicate, must not admit twice
	}
	return g
}

// assertGraphsEqual checks that the two graphs observe identical data through
// every public accessor, including iteration order.
func assertGraphsEqual(t *testing.T, got, want *Graph) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("Len: got %d, want %d", got.Len(), want.Len())
	}
	gt, wt := got.Triples(), want.Triples()
	if !reflect.DeepEqual(gt, wt) {
		t.Fatalf("Triples diverge: got %d triples, want %d", len(gt), len(wt))
	}
	// Match with every binding pattern over a sample of triples.
	for _, tr := range wt[:min(len(wt), 40)] {
		s, p, o := tr.S, tr.P, tr.O
		for mask := 0; mask < 8; mask++ {
			var sp, pp, op *Term
			if mask&1 != 0 {
				sp = &s
			}
			if mask&2 != 0 {
				pp = &p
			}
			if mask&4 != 0 {
				op = &o
			}
			var a, b []Triple
			got.Match(sp, pp, op, func(t Triple) bool { a = append(a, t); return true })
			want.Match(sp, pp, op, func(t Triple) bool { b = append(b, t); return true })
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("Match mask %03b on %v: got %d rows, want %d", mask, tr, len(a), len(b))
			}
		}
		if !got.Has(tr) {
			t.Fatalf("Has(%v) = false on spilled twin", tr)
		}
	}
	// Encoded accessors over identical slot numbering.
	if got.NumSlots() != want.NumSlots() {
		t.Fatalf("NumSlots: got %d, want %d", got.NumSlots(), want.NumSlots())
	}
	for i := 0; i < want.NumSlots(); i++ {
		gs, gp, go_, gl := got.EncodedAt(i)
		ws, wp, wo, wl := want.EncodedAt(i)
		if gs != ws || gp != wp || go_ != wo || gl != wl {
			t.Fatalf("EncodedAt(%d): got (%d,%d,%d,%v), want (%d,%d,%d,%v)", i, gs, gp, go_, gl, ws, wp, wo, wl)
		}
	}
	var gotSlots, wantSlots []int
	got.ForEachEncoded(func(slot int, s, p, o TermID) bool { gotSlots = append(gotSlots, slot); return true })
	want.ForEachEncoded(func(slot int, s, p, o TermID) bool { wantSlots = append(wantSlots, slot); return true })
	if !reflect.DeepEqual(gotSlots, wantSlots) {
		t.Fatalf("ForEachEncoded slot order diverges")
	}
	if gp, wp := got.Predicates(), want.Predicates(); !reflect.DeepEqual(gp, wp) {
		t.Fatalf("Predicates diverge: %v vs %v", gp, wp)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestSpillEquivalence(t *testing.T) {
	want := spillFixture(300)
	got := spillFixture(300)
	if err := got.Spill(t.TempDir(), nil); err != nil {
		t.Fatalf("Spill: %v", err)
	}
	if !got.Spilled() {
		t.Fatal("Spilled() = false after Spill")
	}
	if got.TailLen() != 0 {
		t.Fatalf("TailLen = %d after spill, want 0", got.TailLen())
	}
	assertGraphsEqual(t, got, want)

	// Dict accessors keep working over the arena.
	d := got.Dict()
	for i := 0; i < d.Len(); i++ {
		term := d.Term(TermID(i))
		id, ok := d.Lookup(term)
		if !ok || id != TermID(i) {
			t.Fatalf("Lookup(Term(%d)) = (%d,%v)", i, id, ok)
		}
		if d.Intern(term) != TermID(i) {
			t.Fatalf("Intern of spilled term %d re-assigned", i)
		}
	}
}

func TestSpillThenMutate(t *testing.T) {
	want := spillFixture(200)
	got := spillFixture(200)
	if err := got.Spill(t.TempDir(), nil); err != nil {
		t.Fatalf("Spill: %v", err)
	}
	mutate := func(g *Graph) {
		// Remove a spilled triple, re-add it (gets a new slot in the twin
		// semantics? No: re-add admits a fresh slot in both), add new data.
		victim := NewTriple(ex("p3"), ex("knows"), ex("p4"))
		if !g.Remove(victim) {
			panic("Remove returned false")
		}
		if g.Remove(victim) {
			panic("second Remove returned true")
		}
		g.Add(NewTriple(ex("p3"), ex("nick"), NewLiteral("tres")))
		g.Add(victim) // re-admission after tombstone
		g.Add(NewTriple(ex("fresh"), A, ex("Person")))
	}
	mutate(got)
	mutate(want)
	assertGraphsEqual(t, got, want)
	if got.TailLen() != 3 {
		t.Fatalf("TailLen = %d, want 3", got.TailLen())
	}

	// Duplicate admission must be refused both across the spill boundary and
	// within the tail.
	if got.Add(NewTriple(ex("p0"), A, ex("Person"))) {
		t.Fatal("duplicate of spilled triple admitted")
	}
	if got.Add(NewTriple(ex("fresh"), A, ex("Person"))) {
		t.Fatal("duplicate of tail triple admitted")
	}
}

func TestRespillMultiGeneration(t *testing.T) {
	dir := t.TempDir()
	want := spillFixture(150)
	got := spillFixture(150)
	if err := got.Spill(dir, nil); err != nil {
		t.Fatalf("Spill gen 1: %v", err)
	}
	extend := func(g *Graph) {
		for i := 0; i < 100; i++ {
			g.Add(NewTriple(ex(fmt.Sprintf("x%d", i)), ex("score"), NewTypedLiteral(fmt.Sprintf("%d", i), XSDInteger)))
		}
		g.Remove(NewTriple(ex("p7"), ex("knows"), ex("p8")))
	}
	extend(got)
	extend(want)
	if err := got.Spill(dir, nil); err != nil {
		t.Fatalf("Spill gen 2: %v", err)
	}
	assertGraphsEqual(t, got, want)

	man, err := readManifest(dir)
	if err != nil {
		t.Fatalf("readManifest: %v", err)
	}
	if man.Gen != 2 {
		t.Fatalf("manifest gen = %d, want 2", man.Gen)
	}
	// Superseded generation files are removed.
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), "gen-1.") {
			t.Fatalf("stale generation file survived: %s", e.Name())
		}
	}
}

func TestLoadSpilledRoundTrip(t *testing.T) {
	dir := t.TempDir()
	want := spillFixture(250)
	want.Remove(NewTriple(ex("p9"), ex("knows"), ex("p10")))
	if err := want.Spill(dir, nil); err != nil {
		t.Fatalf("Spill: %v", err)
	}
	got, err := LoadSpilled(dir)
	if err != nil {
		t.Fatalf("LoadSpilled: %v", err)
	}
	assertGraphsEqual(t, got, want)

	// The reloaded graph is writable: tail admission continues.
	if !got.Add(NewTriple(ex("later"), A, ex("Person"))) {
		t.Fatal("Add to reloaded graph refused")
	}
}

func TestLoadSpilledNoManifest(t *testing.T) {
	_, err := LoadSpilled(t.TempDir())
	if !errors.Is(err, ErrNoSpill) {
		t.Fatalf("err = %v, want ErrNoSpill", err)
	}
}

func TestCloneOfSpilledGraph(t *testing.T) {
	g := spillFixture(120)
	if err := g.Spill(t.TempDir(), nil); err != nil {
		t.Fatalf("Spill: %v", err)
	}
	g.Add(NewTriple(ex("tailish"), A, ex("Person")))
	c := g.Clone()
	assertGraphsEqual(t, c, g)
	if !c.Spilled() {
		t.Fatal("clone of spilled graph is not spilled")
	}

	// Mutations do not leak between original and clone.
	victim := NewTriple(ex("p1"), ex("knows"), ex("p2"))
	if !c.Remove(victim) {
		t.Fatal("Remove on clone failed")
	}
	if !g.Has(victim) {
		t.Fatal("Remove on clone leaked into original")
	}
	g.Add(NewTriple(ex("only-orig"), A, ex("Person")))
	if c.Has(NewTriple(ex("only-orig"), A, ex("Person"))) {
		t.Fatal("Add on original leaked into clone")
	}
}

// TestSpillCorruptionQuarantine flips a single byte in each spill file in
// turn and asserts the load fails loudly with a quarantine error (satellite:
// spill-file corruption coverage).
func TestSpillCorruptionQuarantine(t *testing.T) {
	base := t.TempDir()
	src := filepath.Join(base, "src")
	g := spillFixture(300)
	if err := g.Spill(src, nil); err != nil {
		t.Fatalf("Spill: %v", err)
	}
	man, err := readManifest(src)
	if err != nil {
		t.Fatalf("readManifest: %v", err)
	}
	names := []string{"terms.arena", "terms.idx", "triples.log", "post.s", "post.p", "post.o", "dead.bits"}
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			dir := filepath.Join(base, "case-"+name)
			if err := os.MkdirAll(dir, 0o755); err != nil {
				t.Fatal(err)
			}
			for _, n := range append(names, "MANIFEST") {
				from := filepath.Join(src, man.file(n))
				if n == "MANIFEST" {
					from = filepath.Join(src, n)
				}
				data, err := os.ReadFile(from)
				if err != nil {
					t.Fatal(err)
				}
				to := filepath.Join(dir, man.file(n))
				if n == "MANIFEST" {
					to = filepath.Join(dir, n)
				}
				if err := os.WriteFile(to, data, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			victim := filepath.Join(dir, man.file(name))
			data, err := os.ReadFile(victim)
			if err != nil {
				t.Fatal(err)
			}
			if len(data) == 0 {
				t.Fatalf("%s is empty", name)
			}
			data[len(data)/2] ^= 0x40
			if err := os.WriteFile(victim, data, 0o644); err != nil {
				t.Fatal(err)
			}
			_, err = LoadSpilled(dir)
			if err == nil {
				t.Fatalf("LoadSpilled succeeded over corrupt %s", name)
			}
			if !errors.Is(err, ErrSpillCorrupt) {
				t.Fatalf("err = %v, want ErrSpillCorrupt", err)
			}
			var ce *CorruptSpillError
			if !errors.As(err, &ce) {
				t.Fatalf("err %v is not a CorruptSpillError", err)
			}
			if !strings.Contains(err.Error(), "quarantined") {
				t.Fatalf("error does not mention quarantine: %v", err)
			}
			if _, serr := os.Stat(ce.File + ".quarantined"); serr != nil {
				t.Fatalf("corrupt file was not renamed aside: %v", serr)
			}
		})
	}
}

func TestGovernorHysteresis(t *testing.T) {
	heap := uint64(0)
	dir := t.TempDir()
	gv := NewGovernor(SpillConfig{
		Dir:            dir,
		HighMB:         100,
		LowMB:          80,
		MinTailTriples: 1,
		ReadHeap:       func() uint64 { return heap },
	})
	g := spillFixture(100)

	heap = 50 << 20
	if sp, err := gv.Maybe(g); err != nil || sp {
		t.Fatalf("Maybe under watermark: (%v,%v)", sp, err)
	}
	if gv.UnderPressure() {
		t.Fatal("UnderPressure before trip")
	}

	// Trip the high watermark: spill runs, and since the fake heap stays
	// high the latch stays set.
	heap = 150 << 20
	if sp, err := gv.Maybe(g); err != nil || !sp {
		t.Fatalf("Maybe over watermark: (%v,%v)", sp, err)
	}
	if !gv.UnderPressure() {
		t.Fatal("latch not set after trip")
	}
	if !g.Spilled() {
		t.Fatal("graph not spilled")
	}

	// Inside the hysteresis band: latched, but no re-spill.
	heap = 90 << 20
	if sp, err := gv.Maybe(g); err != nil || sp {
		t.Fatalf("Maybe inside band: (%v,%v)", sp, err)
	}
	if !gv.UnderPressure() {
		t.Fatal("latch cleared inside band")
	}

	// Below the low watermark the latch clears.
	heap = 70 << 20
	if sp, err := gv.Maybe(g); err != nil || sp {
		t.Fatalf("Maybe under low watermark: (%v,%v)", sp, err)
	}
	if gv.UnderPressure() {
		t.Fatal("latch not cleared under low watermark")
	}
	if gv.Spills() != 1 {
		t.Fatalf("Spills = %d, want 1", gv.Spills())
	}

	// An empty tail is never worth a re-spill, even over the watermark.
	heap = 150 << 20
	if sp, err := gv.Maybe(g); err != nil || sp {
		t.Fatalf("Maybe with empty tail: (%v,%v)", sp, err)
	}
}

func TestSpillPreservesAdmissionOrderUnderChurn(t *testing.T) {
	dir := t.TempDir()
	want := NewGraph()
	got := NewGraph()
	apply := func(g *Graph, spillAt map[int]bool) {
		for i := 0; i < 500; i++ {
			g.Add(NewTriple(ex(fmt.Sprintf("s%d", i%97)), ex(fmt.Sprintf("q%d", i%13)), NewLiteral(fmt.Sprintf("v%d", i))))
			if i%7 == 0 {
				g.Remove(NewTriple(ex(fmt.Sprintf("s%d", (i/2)%97)), ex(fmt.Sprintf("q%d", (i/2)%13)), NewLiteral(fmt.Sprintf("v%d", i/2))))
			}
			if spillAt[i] {
				if err := g.Spill(dir, nil); err != nil {
					panic(err)
				}
			}
		}
	}
	apply(want, nil)
	apply(got, map[int]bool{100: true, 250: true, 499: true})
	assertGraphsEqual(t, got, want)
}

func TestSpilledGraphSortedAccessors(t *testing.T) {
	g := spillFixture(100)
	wantClasses := g.Classes()
	wantInst := g.InstancesOf(ex("Person"))
	if err := g.Spill(t.TempDir(), nil); err != nil {
		t.Fatalf("Spill: %v", err)
	}
	if got := g.Classes(); !reflect.DeepEqual(got, wantClasses) {
		t.Fatalf("Classes diverge after spill")
	}
	gotInst := g.InstancesOf(ex("Person"))
	if !reflect.DeepEqual(gotInst, wantInst) {
		t.Fatalf("InstancesOf diverges after spill: %d vs %d", len(gotInst), len(wantInst))
	}
	if !sort.SliceIsSorted(gotInst, func(i, j int) bool { return gotInst[i].Value < gotInst[j].Value }) {
		// InstancesOf has no sort contract; just ensure determinism vs twin.
		t.Log("InstancesOf unsorted (acceptable, matches resident twin)")
	}
}
