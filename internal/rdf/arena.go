package rdf

import (
	"fmt"
	"io"
	"os"
	"sync"
)

// termArena is the disk-backed term dictionary of a spilled graph: every
// term interned before the spill lives in a string arena file as a sequence
// of CRC-framed blocks of arenaBlockTerms terms each, decoded on demand
// through a bounded LRU. What stays resident per spilled term is a block
// offset share (8 bytes / arenaBlockTerms) and one entry in the 64-bit hash
// index that serves Intern/Lookup — the strings themselves live on disk.
//
// The arena is immutable once written; terms interned after the spill go to
// the Dict's in-memory tail. Readers are goroutine-safe (the cache is
// mutex-guarded, file reads use ReadAt), which is what lets serve snapshots
// share one spilled generation across concurrent queries.
type termArena struct {
	path     string
	f        *os.File
	n        int     // spilled term count; ids [0,n) resolve here
	blockOff []int64 // file offset of each block frame

	// hash serves Lookup/Intern over spilled terms: 64-bit FNV-1a of the
	// term → id, with a rare overflow list when two terms collide. A hit is
	// confirmed by decoding the candidate term, so collisions cannot alias.
	hash map[uint64]TermID
	over map[uint64][]TermID

	mu    sync.Mutex
	cache *lruCache[[]Term]
}

const (
	// arenaBlockTerms is the term-block granularity: large enough that the
	// resident offset table is negligible, small enough that decoding a
	// block to serve one term stays cheap and cache-friendly.
	arenaBlockTerms = 256
	// arenaCacheBlocks bounds resident decoded term blocks (~16k terms).
	arenaCacheBlocks = 64
	// maxSpillPayload caps any single frame a spill reader will allocate
	// for, so a corrupt length prefix cannot drive an OOM.
	maxSpillPayload = 1 << 30
)

// termHash64 is 64-bit FNV-1a over all identity fields of a term, with 0x1f
// separators so field boundaries cannot alias.
func termHash64(t Term) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	h = (h ^ uint64(t.Kind)) * prime64
	for i := 0; i < len(t.Value); i++ {
		h = (h ^ uint64(t.Value[i])) * prime64
	}
	h = (h ^ 0x1f) * prime64
	for i := 0; i < len(t.Datatype); i++ {
		h = (h ^ uint64(t.Datatype[i])) * prime64
	}
	h = (h ^ 0x1f) * prime64
	for i := 0; i < len(t.Lang); i++ {
		h = (h ^ uint64(t.Lang[i])) * prime64
	}
	return h
}

// appendTermRecord serializes one term: kind byte plus three length-prefixed
// strings. Kind+3 fields is the whole identity of a Term (quoted triples
// keep their serialized form in Value), so this round-trips every term.
func appendTermRecord(dst []byte, t Term) []byte {
	dst = append(dst, byte(t.Kind))
	dst = appendUvarint(dst, uint64(len(t.Value)))
	dst = append(dst, t.Value...)
	dst = appendUvarint(dst, uint64(len(t.Datatype)))
	dst = append(dst, t.Datatype...)
	dst = appendUvarint(dst, uint64(len(t.Lang)))
	dst = append(dst, t.Lang...)
	return dst
}

func readTermRecord(buf []byte, pos int) (Term, int, error) {
	if pos >= len(buf) {
		return Term{}, 0, fmt.Errorf("truncated term record at %d", pos)
	}
	t := Term{Kind: Kind(buf[pos])}
	pos++
	readStr := func(pos int) (string, int, error) {
		n, pos, err := readUvarint(buf, pos)
		if err != nil {
			return "", 0, err
		}
		if pos+int(n) > len(buf) {
			return "", 0, fmt.Errorf("term string overruns block at %d", pos)
		}
		return string(buf[pos : pos+int(n)]), pos + int(n), nil
	}
	var err error
	if t.Value, pos, err = readStr(pos); err != nil {
		return Term{}, 0, err
	}
	if t.Datatype, pos, err = readStr(pos); err != nil {
		return Term{}, 0, err
	}
	if t.Lang, pos, err = readStr(pos); err != nil {
		return Term{}, 0, err
	}
	return t, pos, nil
}

// writeArena streams n terms (term(i) for i in [0,n)) as CRC-framed blocks
// to w and returns the frame offset of each block.
func writeArena(w io.Writer, n int, term func(int) Term) ([]int64, error) {
	var (
		blockOff []int64
		off      int64
		payload  []byte
		frame    []byte
	)
	for base := 0; base < n; base += arenaBlockTerms {
		end := base + arenaBlockTerms
		if end > n {
			end = n
		}
		payload = payload[:0]
		for i := base; i < end; i++ {
			payload = appendTermRecord(payload, term(i))
		}
		frame = appendFrame(frame[:0], payload)
		if _, err := w.Write(frame); err != nil {
			return nil, err
		}
		blockOff = append(blockOff, off)
		off += int64(len(frame))
	}
	return blockOff, nil
}

// openArena opens an arena file for reading. When buildIndex is true it
// scans every block — verifying all CRCs up front — and builds the hash
// index from the decoded terms; otherwise the caller supplies the index
// (the in-process spill path already has every hash).
func openArena(path string, n int, blockOff []int64, buildIndex bool) (*termArena, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	a := &termArena{
		path:     path,
		f:        f,
		n:        n,
		blockOff: blockOff,
		hash:     make(map[uint64]TermID, n),
		over:     make(map[uint64][]TermID),
		cache:    newLRU[[]Term](arenaCacheBlocks),
	}
	if buildIndex {
		for b := range blockOff {
			terms, err := a.decodeBlock(b)
			if err != nil {
				f.Close()
				return nil, err
			}
			for i, t := range terms {
				a.addHash(t, TermID(b*arenaBlockTerms+i))
			}
		}
	}
	return a, nil
}

func (a *termArena) addHash(t Term, id TermID) {
	h := termHash64(t)
	if _, ok := a.hash[h]; !ok {
		a.hash[h] = id
		return
	}
	a.over[h] = append(a.over[h], id)
}

func (a *termArena) close() {
	if a.f != nil {
		a.f.Close()
	}
}

// decodeBlock reads and decodes block b straight from disk (no cache).
func (a *termArena) decodeBlock(b int) ([]Term, error) {
	payload, _, err := readFrameAt(a.f, a.blockOff[b], maxSpillPayload)
	if err != nil {
		return nil, err
	}
	count := arenaBlockTerms
	if rem := a.n - b*arenaBlockTerms; rem < count {
		count = rem
	}
	terms := make([]Term, 0, count)
	pos := 0
	for len(terms) < count {
		t, next, derr := readTermRecord(payload, pos)
		if derr != nil {
			return nil, &CorruptSpillError{File: a.path, Offset: a.blockOff[b], Detail: derr.Error()}
		}
		terms = append(terms, t)
		pos = next
	}
	return terms, nil
}

// block returns decoded block b through the LRU, panicking on corruption:
// the CRC was verified when the generation was loaded, so a mid-run failure
// means the bytes rotted underneath us and no correct answer exists.
func (a *termArena) block(b int) []Term {
	a.mu.Lock()
	if terms, ok := a.cache.get(b); ok {
		a.mu.Unlock()
		return terms
	}
	a.mu.Unlock()
	terms, err := a.decodeBlock(b)
	if err != nil {
		panic(err.Error())
	}
	a.mu.Lock()
	a.cache.put(b, terms)
	a.mu.Unlock()
	return terms
}

// term resolves a spilled term id.
func (a *termArena) term(id TermID) Term {
	return a.block(int(id) / arenaBlockTerms)[int(id)%arenaBlockTerms]
}

// lookup finds the id of a spilled term, if present.
func (a *termArena) lookup(t Term) (TermID, bool) {
	h := termHash64(t)
	id, ok := a.hash[h]
	if !ok {
		return 0, false
	}
	if a.term(id) == t {
		return id, true
	}
	for _, cand := range a.over[h] {
		if a.term(cand) == t {
			return cand, true
		}
	}
	return 0, false
}
