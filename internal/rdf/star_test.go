package rdf

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTripleTermRoundTrip(t *testing.T) {
	base := NewTriple(ex("s"), ex("p"), NewTypedLiteral("5", XSDInteger))
	tt, err := NewTripleTerm(base)
	if err != nil {
		t.Fatal(err)
	}
	if !tt.IsTripleTerm() || tt.IsResource() || tt.IsLiteral() {
		t.Fatalf("kind flags wrong: %+v", tt)
	}
	back, ok := tt.AsTriple()
	if !ok || back != base {
		t.Fatalf("AsTriple = %v, %v", back, ok)
	}
	want := `<< <http://example.org/s> <http://example.org/p> "5"^^<http://www.w3.org/2001/XMLSchema#integer> >>`
	if got := tt.String(); got != want {
		t.Fatalf("String() = %q", got)
	}
}

func TestTripleTermRejectsNestingAndInvalid(t *testing.T) {
	base := NewTriple(ex("s"), ex("p"), ex("o"))
	tt := MustTripleTerm(base)
	if _, err := NewTripleTerm(NewTriple(tt, ex("p"), ex("o"))); err == nil {
		t.Error("nested subject accepted")
	}
	if _, err := NewTripleTerm(NewTriple(ex("s"), ex("p"), tt)); err == nil {
		t.Error("nested object accepted")
	}
	if _, err := NewTripleTerm(NewTriple(NewLiteral("x"), ex("p"), ex("o"))); err == nil {
		t.Error("literal subject accepted")
	}
	if _, err := NewTripleTerm(NewTriple(ex("s"), ex("p\x1f"), ex("o"))); err == nil {
		t.Error("control characters accepted")
	}
	if _, ok := ex("s").AsTriple(); ok {
		t.Error("AsTriple on an IRI succeeded")
	}
}

func TestTripleTermsAreComparable(t *testing.T) {
	a := MustTripleTerm(NewTriple(ex("s"), ex("p"), NewLiteral("v")))
	b := MustTripleTerm(NewTriple(ex("s"), ex("p"), NewLiteral("v")))
	c := MustTripleTerm(NewTriple(ex("s"), ex("p"), NewLiteral("w")))
	if a != b {
		t.Error("equal quoted triples compare unequal")
	}
	if a == c {
		t.Error("distinct quoted triples compare equal")
	}
	// Usable as graph terms.
	g := NewGraph()
	g.Add(NewTriple(a, ex("since"), NewLiteral("2020")))
	if g.MatchCount(&b, nil, nil) != 1 {
		t.Error("quoted triple subject not matchable")
	}
}

// Property: any random simple triple survives the quoted-triple encoding.
func TestQuickTripleTermRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() Term {
			switch rng.Intn(3) {
			case 0:
				return NewIRI(fmt.Sprintf("http://x/e%d", rng.Intn(100)))
			case 1:
				return NewBlank(fmt.Sprintf("b%d", rng.Intn(10)))
			default:
				if rng.Intn(2) == 0 {
					return NewLangLiteral(fmt.Sprintf("v%d", rng.Intn(100)), "en")
				}
				return NewTypedLiteral(fmt.Sprint(rng.Intn(1000)), XSDInteger)
			}
		}
		s := mk()
		for !s.IsResource() {
			s = mk()
		}
		base := NewTriple(s, NewIRI(fmt.Sprintf("http://x/p%d", rng.Intn(10))), mk())
		tt, err := NewTripleTerm(base)
		if err != nil {
			return false
		}
		back, ok := tt.AsTriple()
		return ok && back == base
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
