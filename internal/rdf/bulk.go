package rdf

import "sync"

// EncodedTriple is a dictionary-encoded triple for bulk graph construction.
// Components must be ids of the dictionary the graph is built over; the bulk
// constructor trusts them (ids are only produced by Intern/Dense).
type EncodedTriple struct {
	S, P, O TermID
}

// minParallelIndex is the triple count below which parallel index
// construction cannot pay for its goroutines.
const minParallelIndex = 1 << 14

// NewGraphFromEncoded bulk-builds a graph over d from encoded triples,
// preserving stream order: duplicate admission, slot assignment, and every
// iteration order are identical to NewGraphWithDict(d) followed by Add of
// the decoded triples in the same order. Posting-list construction fans out
// across workers (admission itself is order-defining and stays sequential);
// workers <= 1, or inputs too small to amortize goroutines, build everything
// on the calling goroutine.
func NewGraphFromEncoded(d *Dict, enc []EncodedTriple, workers int) *Graph {
	g := NewGraphWithDict(d)
	g.triples = make([]encTriple, 0, len(enc))
	for _, e := range enc {
		et := encTriple{e.S, e.P, e.O}
		if _, ok := g.present[et]; ok {
			continue
		}
		g.present[et] = int32(len(g.triples))
		g.triples = append(g.triples, et)
	}
	g.dead = make([]bool, len(g.triples))
	cGraphTriples.Add(int64(len(g.triples)))
	cIndexEntries.Add(3 * int64(len(g.triples)))
	if workers <= 1 || len(g.triples) < minParallelIndex {
		for i, e := range g.triples {
			idx := int32(i)
			g.bySubj[e.s] = append(g.bySubj[e.s], idx)
			g.byPred[e.p] = append(g.byPred[e.p], idx)
			g.byObj[e.o] = append(g.byObj[e.o], idx)
		}
		return g
	}
	g.buildIndexesParallel(workers)
	return g
}

// buildIndexesParallel builds the three posting-list indexes over contiguous
// slot ranges, one range per worker, then merges per-range lists by
// concatenating them in range order. Each range's lists are ascending and the
// ranges are contiguous and disjoint, so in-order concatenation is a k-way
// sorted merge whose runs never interleave — the result is exactly the
// insertion-order lists sequential Add produces.
func (g *Graph) buildIndexesParallel(workers int) {
	n := len(g.triples)
	if workers > n {
		workers = n
	}
	type partial struct {
		bySubj, byPred, byObj map[TermID][]int32
	}
	parts := make([]partial, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := n*w/workers, n*(w+1)/workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			p := partial{
				bySubj: make(map[TermID][]int32),
				byPred: make(map[TermID][]int32),
				byObj:  make(map[TermID][]int32),
			}
			for i := lo; i < hi; i++ {
				e := g.triples[i]
				idx := int32(i)
				p.bySubj[e.s] = append(p.bySubj[e.s], idx)
				p.byPred[e.p] = append(p.byPred[e.p], idx)
				p.byObj[e.o] = append(p.byObj[e.o], idx)
			}
			parts[w] = p
		}(w, lo, hi)
	}
	wg.Wait()
	var mg sync.WaitGroup
	merge := func(dst map[TermID][]int32, pick func(*partial) map[TermID][]int32) {
		defer mg.Done()
		for i := range parts {
			for k, l := range pick(&parts[i]) {
				dst[k] = append(dst[k], l...)
			}
		}
	}
	mg.Add(3)
	go merge(g.bySubj, func(p *partial) map[TermID][]int32 { return p.bySubj })
	go merge(g.byPred, func(p *partial) map[TermID][]int32 { return p.byPred })
	go merge(g.byObj, func(p *partial) map[TermID][]int32 { return p.byObj })
	mg.Wait()
}

// NumSlots returns the number of triple slots, live and tombstoned. Slot
// indexes are stable for the life of the graph and usable with EncodedAt;
// spilling does not renumber them.
func (g *Graph) NumSlots() int { return g.numSlots() }

// EncodedAt returns the encoded triple in slot i and whether it is live.
func (g *Graph) EncodedAt(i int) (s, p, o TermID, live bool) {
	e := g.encAt(i)
	return e.s, e.p, e.o, !g.slotDead(i)
}

// ForEachEncoded calls fn for every live triple slot in admission order (the
// same order ForEach observes) until fn returns false, passing the slot
// index and the encoded components.
func (g *Graph) ForEachEncoded(fn func(slot int, s, p, o TermID) bool) {
	g.forEachSlot(func(slot int, e encTriple) bool {
		return fn(slot, e.s, e.p, e.o)
	})
}
