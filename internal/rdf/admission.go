package rdf

// This file exposes the graph's admission order — the slot index assigned to
// each triple by the Add call that created it — plus the exact-rollback
// primitives the incremental transformation needs. Admission order is the
// contract the S3PG data transformation is deterministic over (see ForEach),
// so core.ApplyDelta keys its incremental state by these indexes, and a
// rejected batch must be rolled back without perturbing the order the
// surviving triples were admitted in.

// IndexOf returns the admission index of a live triple. The index is stable
// for the triple's lifetime: Remove tombstones the slot, and re-adding the
// same triple assigns a fresh, larger index.
func (g *Graph) IndexOf(t Triple) (int32, bool) {
	s, ok := g.dict.Lookup(t.S)
	if !ok {
		return 0, false
	}
	p, ok := g.dict.Lookup(t.P)
	if !ok {
		return 0, false
	}
	o, ok := g.dict.Lookup(t.O)
	if !ok {
		return 0, false
	}
	idx, ok := g.present[encTriple{s, p, o}]
	return idx, ok
}

// MatchIndexed is Match, additionally passing each triple's admission index.
func (g *Graph) MatchIndexed(s, p, o *Term, fn func(int32, Triple) bool) {
	var se, pe, oe = noID, noID, noID
	if s != nil {
		id, ok := g.dict.Lookup(*s)
		if !ok {
			return
		}
		se = id
	}
	if p != nil {
		id, ok := g.dict.Lookup(*p)
		if !ok {
			return
		}
		pe = id
	}
	if o != nil {
		id, ok := g.dict.Lookup(*o)
		if !ok {
			return
		}
		oe = id
	}
	if se != noID && pe != noID && oe != noID {
		e := encTriple{se, pe, oe}
		if idx, ok := g.present[e]; ok {
			fn(idx, g.decode(e))
		}
		return
	}
	list, bound := g.candidateList(se, pe, oe)
	if !bound {
		for i, e := range g.triples {
			if g.dead[i] {
				continue
			}
			if !fn(int32(i), g.decode(e)) {
				return
			}
		}
		return
	}
	for _, idx := range list {
		if g.dead[idx] {
			continue
		}
		e := g.triples[idx]
		if se != noID && e.s != se {
			continue
		}
		if pe != noID && e.p != pe {
			continue
		}
		if oe != noID && e.o != oe {
			continue
		}
		if !fn(idx, g.decode(e)) {
			return
		}
	}
}

// Unremove resurrects a triple tombstoned by Remove at its original slot,
// restoring the exact pre-Remove admission order. It reports whether the
// slot was restored; it refuses (returning false) when the slot is not a
// tombstone or when the triple was re-added elsewhere in the meantime —
// callers rolling back a batch must truncate the batch's Adds first.
func (g *Graph) Unremove(idx int32, t Triple) bool {
	if int(idx) >= len(g.triples) || !g.dead[idx] {
		return false
	}
	s, ok := g.dict.Lookup(t.S)
	if !ok {
		return false
	}
	p, ok := g.dict.Lookup(t.P)
	if !ok {
		return false
	}
	o, ok := g.dict.Lookup(t.O)
	if !ok {
		return false
	}
	e := encTriple{s, p, o}
	if g.triples[idx] != e {
		return false
	}
	if _, present := g.present[e]; present {
		return false
	}
	g.present[e] = idx
	g.dead[idx] = false
	g.nDead--
	return true
}

// TruncateFrom removes every admission slot >= n, live or tombstoned,
// un-admitting the most recent Adds. Posting lists are append-ordered, so
// the truncated entries are exactly their tails. Dictionary entries interned
// by the truncated Adds are retained (ids are internal and never affect
// admission order).
func (g *Graph) TruncateFrom(n int) {
	if n < 0 {
		n = 0
	}
	for i := len(g.triples) - 1; i >= n; i-- {
		e := g.triples[i]
		g.bySubj[e.s] = popIndex(g.bySubj[e.s], int32(i))
		g.byPred[e.p] = popIndex(g.byPred[e.p], int32(i))
		g.byObj[e.o] = popIndex(g.byObj[e.o], int32(i))
		if g.dead[i] {
			g.nDead--
		} else {
			delete(g.present, e)
		}
	}
	g.triples = g.triples[:n]
	g.dead = g.dead[:n]
}

// popIndex removes the tail entry of a posting list, asserting it is the
// expected index (a mismatch means the list lost its append order — a bug).
func popIndex(list []int32, want int32) []int32 {
	if len(list) == 0 || list[len(list)-1] != want {
		panic("rdf: posting list out of admission order during truncate")
	}
	return list[:len(list)-1]
}
