// Package rdf implements the RDF 1.1 data model used throughout S3PG:
// IRIs, blank nodes, typed and language-tagged literals, triples, and a
// dictionary-encoded in-memory graph with pattern-match indexes.
//
// The model follows Definition 2.1 of the paper: an RDF graph is a finite
// set of <s, p, o> triples with s ∈ I ∪ B, p ∈ I, o ∈ I ∪ B ∪ L.
package rdf

import (
	"fmt"
	"strings"
)

// Kind discriminates the three classes of RDF terms.
type Kind uint8

// The term kinds of the RDF abstract syntax, plus RDF-star quoted triples.
const (
	IRI Kind = iota + 1
	Blank
	Literal
	// TripleTerm is an RDF-star quoted triple (<< s p o >>), usable in
	// subject and object positions to annotate statements.
	TripleTerm
)

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	switch k {
	case IRI:
		return "IRI"
	case Blank:
		return "Blank"
	case Literal:
		return "Literal"
	case TripleTerm:
		return "TripleTerm"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Term is a single RDF term. Terms are plain comparable values: two terms
// are the same RDF term iff the structs are ==. The zero Term is invalid.
//
// For IRIs, Value holds the absolute IRI. For blank nodes, Value holds the
// local label (without the "_:" prefix). For literals, Value holds the
// lexical form, Datatype the datatype IRI (empty means xsd:string per RDF
// 1.1), and Lang the optional BCP-47 language tag (which forces the datatype
// rdf:langString).
type Term struct {
	Kind     Kind
	Value    string
	Datatype string
	Lang     string
}

// NewIRI returns an IRI term.
func NewIRI(iri string) Term { return Term{Kind: IRI, Value: iri} }

// NewBlank returns a blank node term with the given label (no "_:" prefix).
func NewBlank(label string) Term { return Term{Kind: Blank, Value: label} }

// NewLiteral returns a plain literal, which per RDF 1.1 has datatype
// xsd:string. The datatype field is left empty as the canonical encoding of
// xsd:string so that plain and explicitly-typed string literals compare equal.
func NewLiteral(lexical string) Term { return Term{Kind: Literal, Value: lexical} }

// NewTypedLiteral returns a literal with an explicit datatype IRI.
// An xsd:string datatype is normalized to the empty encoding.
func NewTypedLiteral(lexical, datatype string) Term {
	if datatype == XSDString {
		datatype = ""
	}
	return Term{Kind: Literal, Value: lexical, Datatype: datatype}
}

// NewLangLiteral returns a language-tagged literal (datatype rdf:langString).
func NewLangLiteral(lexical, lang string) Term {
	return Term{Kind: Literal, Value: lexical, Lang: strings.ToLower(lang)}
}

// IsIRI reports whether the term is an IRI.
func (t Term) IsIRI() bool { return t.Kind == IRI }

// IsBlank reports whether the term is a blank node.
func (t Term) IsBlank() bool { return t.Kind == Blank }

// IsLiteral reports whether the term is a literal.
func (t Term) IsLiteral() bool { return t.Kind == Literal }

// IsResource reports whether the term may appear in subject position
// (an IRI or a blank node).
func (t Term) IsResource() bool { return t.Kind == IRI || t.Kind == Blank }

// IsTripleTerm reports whether the term is an RDF-star quoted triple.
func (t Term) IsTripleTerm() bool { return t.Kind == TripleTerm }

// IsZero reports whether the term is the invalid zero value.
func (t Term) IsZero() bool { return t.Kind == 0 }

// DatatypeIRI returns the effective datatype IRI of a literal: the explicit
// datatype, rdf:langString for language-tagged literals, and xsd:string for
// plain literals. It returns "" for non-literals.
func (t Term) DatatypeIRI() string {
	if t.Kind != Literal {
		return ""
	}
	if t.Lang != "" {
		return RDFLangString
	}
	if t.Datatype == "" {
		return XSDString
	}
	return t.Datatype
}

// String renders the term in N-Triples syntax.
func (t Term) String() string {
	switch t.Kind {
	case IRI:
		return "<" + t.Value + ">"
	case Blank:
		return "_:" + t.Value
	case Literal:
		var b strings.Builder
		b.WriteByte('"')
		b.WriteString(EscapeLiteral(t.Value))
		b.WriteByte('"')
		if t.Lang != "" {
			b.WriteByte('@')
			b.WriteString(t.Lang)
		} else if t.Datatype != "" {
			b.WriteString("^^<")
			b.WriteString(t.Datatype)
			b.WriteByte('>')
		}
		return b.String()
	case TripleTerm:
		if q, ok := t.AsTriple(); ok {
			return "<< " + q.S.String() + " " + q.P.String() + " " + q.O.String() + " >>"
		}
		return "<< malformed >>"
	default:
		return "<invalid term>"
	}
}

// EscapeLiteral escapes a lexical form for embedding in a double-quoted
// N-Triples / Turtle literal.
func EscapeLiteral(s string) string {
	if !strings.ContainsAny(s, "\"\\\n\r\t") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	// Byte-wise: every escaped character is ASCII, so multi-byte sequences —
	// including invalid UTF-8 — pass through unchanged and serialization
	// round-trips the lexical form exactly.
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// Triple is a single RDF statement.
type Triple struct {
	S, P, O Term
}

// NewTriple builds a triple from its three terms.
func NewTriple(s, p, o Term) Triple { return Triple{S: s, P: p, O: o} }

// String renders the triple as an N-Triples statement (without newline).
func (t Triple) String() string {
	return t.S.String() + " " + t.P.String() + " " + t.O.String() + " ."
}

// Valid reports whether the triple is well formed per Definition 2.1,
// extended with RDF-star: the subject is a resource or quoted triple, the
// predicate an IRI, the object any term.
func (t Triple) Valid() bool {
	return (t.S.IsResource() || t.S.IsTripleTerm()) && t.P.IsIRI() && !t.O.IsZero()
}
