package rdf

import (
	"fmt"
	"sync"
	"testing"
)

// genTerms returns a term stream with plenty of duplicates across all kinds.
func genTerms(n int) []Term {
	out := make([]Term, 0, n)
	for i := 0; i < n; i++ {
		switch i % 5 {
		case 0:
			out = append(out, NewIRI(fmt.Sprintf("http://ex.org/e%d", i%97)))
		case 1:
			out = append(out, NewBlank(fmt.Sprintf("b%d", i%53)))
		case 2:
			out = append(out, NewLiteral(fmt.Sprintf("plain %d", i%71)))
		case 3:
			out = append(out, NewTypedLiteral(fmt.Sprintf("%d", i%89), XSDInteger))
		default:
			out = append(out, NewLangLiteral(fmt.Sprintf("hello %d", i%61), "en"))
		}
	}
	return out
}

// TestShardedDictDenseRemapMatchesSequential interns a term stream
// concurrently through a ShardedDict and checks that the Denser remap, walked
// in stream order, reproduces exactly the ids (and dictionary contents) of
// sequential interning.
func TestShardedDictDenseRemapMatchesSequential(t *testing.T) {
	stream := genTerms(20000)

	seq := NewDict()
	want := make([]TermID, len(stream))
	for i, tm := range stream {
		want[i] = seq.Intern(tm)
	}

	sd := NewShardedDict()
	prov := make([]ProvID, len(stream))
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := len(stream)*w/workers, len(stream)*(w+1)/workers
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				prov[i] = sd.Intern(stream[i])
			}
		}(lo, hi)
	}
	wg.Wait()
	if sd.Len() != seq.Len() {
		t.Fatalf("sharded dict has %d terms, sequential %d", sd.Len(), seq.Len())
	}

	dn := NewDenser(sd)
	for i := range stream {
		if got := dn.Dense(prov[i]); got != want[i] {
			t.Fatalf("stream[%d]=%v: dense id %d, sequential id %d", i, stream[i], got, want[i])
		}
	}
	d := dn.Dict()
	if d.Len() != seq.Len() {
		t.Fatalf("densed dict has %d terms, sequential %d", d.Len(), seq.Len())
	}
	for id := 0; id < d.Len(); id++ {
		if d.Term(TermID(id)) != seq.Term(TermID(id)) {
			t.Fatalf("term %d: densed %v, sequential %v", id, d.Term(TermID(id)), seq.Term(TermID(id)))
		}
	}
}

// TestDenserIntoSharedDict checks the incremental form: remapping into a
// dictionary that already holds terms keeps existing ids and extends densely.
func TestDenserIntoSharedDict(t *testing.T) {
	base := NewDict()
	a := base.Intern(NewIRI("http://ex.org/a"))
	sd := NewShardedDict()
	pa := sd.Intern(NewIRI("http://ex.org/a"))
	pb := sd.Intern(NewIRI("http://ex.org/b"))
	dn := NewDenserInto(sd, base)
	if got := dn.Dense(pa); got != a {
		t.Fatalf("existing term remapped to %d, want %d", got, a)
	}
	if got := dn.Dense(pb); got != TermID(1) {
		t.Fatalf("new term remapped to %d, want 1", got)
	}
}

func encodeAll(d *Dict, ts []Triple) []EncodedTriple {
	enc := make([]EncodedTriple, len(ts))
	for i, tr := range ts {
		enc[i] = EncodedTriple{d.Intern(tr.S), d.Intern(tr.P), d.Intern(tr.O)}
	}
	return enc
}

func genTriples(n int) []Triple {
	out := make([]Triple, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, NewTriple(
			NewIRI(fmt.Sprintf("http://ex.org/s%d", i%211)),
			NewIRI(fmt.Sprintf("http://ex.org/p%d", i%13)),
			NewTypedLiteral(fmt.Sprintf("%d", i%307), XSDInteger),
		))
	}
	return out
}

// TestNewGraphFromEncodedMatchesAdd checks that the bulk constructor with
// parallel index build is observationally identical to sequential Add calls:
// same admission (dedup), same iteration order, same posting lists.
func TestNewGraphFromEncodedMatchesAdd(t *testing.T) {
	ts := genTriples(20000) // above minParallelIndex after dedup? ensure volume below is also covered
	seq := NewGraph()
	for _, tr := range ts {
		seq.Add(tr)
	}

	d := NewDict()
	g := NewGraphFromEncoded(d, encodeAll(d, ts), 4)

	if g.Len() != seq.Len() {
		t.Fatalf("bulk graph has %d triples, sequential %d", g.Len(), seq.Len())
	}
	a, b := g.Triples(), seq.Triples()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("triple %d: bulk %v, sequential %v", i, a[i], b[i])
		}
	}
	// Posting lists: every single-component pattern must enumerate matches in
	// the same order.
	for _, probe := range []Triple{ts[0], ts[len(ts)/2], ts[len(ts)-1]} {
		for _, pat := range [][3]*Term{
			{&probe.S, nil, nil},
			{nil, &probe.P, nil},
			{nil, nil, &probe.O},
		} {
			var got, want []Triple
			g.Match(pat[0], pat[1], pat[2], func(tr Triple) bool { got = append(got, tr); return true })
			seq.Match(pat[0], pat[1], pat[2], func(tr Triple) bool { want = append(want, tr); return true })
			if len(got) != len(want) {
				t.Fatalf("pattern %v: bulk %d matches, sequential %d", pat, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("pattern %v match %d: bulk %v, sequential %v", pat, i, got[i], want[i])
				}
			}
		}
	}
}

// TestGraphIterationOrderInterleavedAddRemove is the regression test for the
// documented iteration-order guarantee: interleaved Add/Remove never reorders
// survivors, and a re-added triple moves to the end of the order.
func TestGraphIterationOrderInterleavedAddRemove(t *testing.T) {
	mk := func(i int) Triple {
		return NewTriple(NewIRI(fmt.Sprintf("http://ex.org/s%d", i)), NewIRI("http://ex.org/p"), NewLiteral(fmt.Sprintf("v%d", i)))
	}
	g := NewGraph()
	for i := 1; i <= 5; i++ {
		g.Add(mk(i))
	}
	if !g.Remove(mk(2)) {
		t.Fatal("Remove(t2) = false, want true")
	}
	g.Add(mk(6))
	g.Add(mk(2)) // re-admit: must land at the end
	g.Remove(mk(4))

	want := []Triple{mk(1), mk(3), mk(5), mk(6), mk(2)}
	check := func(name string, got []Triple) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("%s: %d triples, want %d", name, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s[%d] = %v, want %v", name, i, got[i], want[i])
			}
		}
	}
	check("Triples", g.Triples())

	var fe []Triple
	g.ForEach(func(tr Triple) bool { fe = append(fe, tr); return true })
	check("ForEach", fe)

	// The posting-list path (predicate index) must skip tombstones and agree.
	p := NewIRI("http://ex.org/p")
	var m []Triple
	g.Match(nil, &p, nil, func(tr Triple) bool { m = append(m, tr); return true })
	check("Match(byPred)", m)

	// The full-scan path (no bound component) as well.
	var fs []Triple
	g.Match(nil, nil, nil, func(tr Triple) bool { fs = append(fs, tr); return true })
	check("Match(scan)", fs)

	var fenc []Triple
	g.ForEachEncoded(func(_ int, s, pp, o TermID) bool {
		fenc = append(fenc, Triple{S: g.dict.Term(s), P: g.dict.Term(pp), O: g.dict.Term(o)})
		return true
	})
	check("ForEachEncoded", fenc)

	if g.Len() != 5 {
		t.Fatalf("Len = %d, want 5", g.Len())
	}
}

// TestDictInternNoAllocsOnHit guards the interning hot path: re-interning an
// already-interned term must not allocate.
func TestDictInternNoAllocsOnHit(t *testing.T) {
	d := NewDict()
	terms := genTerms(64)
	for _, tm := range terms {
		d.Intern(tm)
	}
	allocs := testing.AllocsPerRun(100, func() {
		for _, tm := range terms {
			d.Intern(tm)
		}
	})
	if allocs != 0 {
		t.Fatalf("Dict.Intern of interned terms allocates %.1f times per run, want 0", allocs)
	}
}
