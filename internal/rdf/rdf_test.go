package rdf

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func ex(local string) Term { return NewIRI("http://example.org/" + local) }

func TestTermConstructors(t *testing.T) {
	iri := NewIRI("http://example.org/a")
	if !iri.IsIRI() || iri.IsLiteral() || iri.IsBlank() {
		t.Fatalf("IRI kind flags wrong: %+v", iri)
	}
	b := NewBlank("b0")
	if !b.IsBlank() || !b.IsResource() {
		t.Fatalf("blank kind flags wrong: %+v", b)
	}
	l := NewLiteral("hi")
	if !l.IsLiteral() || l.IsResource() {
		t.Fatalf("literal kind flags wrong: %+v", l)
	}
	if l.DatatypeIRI() != XSDString {
		t.Fatalf("plain literal datatype = %q, want xsd:string", l.DatatypeIRI())
	}
}

func TestTypedLiteralNormalizesXSDString(t *testing.T) {
	a := NewLiteral("x")
	b := NewTypedLiteral("x", XSDString)
	if a != b {
		t.Fatalf("plain and xsd:string literals should be equal: %+v vs %+v", a, b)
	}
}

func TestLangLiteral(t *testing.T) {
	l := NewLangLiteral("Bonjour", "FR")
	if l.Lang != "fr" {
		t.Fatalf("lang not lowercased: %q", l.Lang)
	}
	if l.DatatypeIRI() != RDFLangString {
		t.Fatalf("lang literal datatype = %q", l.DatatypeIRI())
	}
	if got, want := l.String(), `"Bonjour"@fr`; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestTermString(t *testing.T) {
	cases := []struct {
		term Term
		want string
	}{
		{NewIRI("http://x/y"), "<http://x/y>"},
		{NewBlank("n1"), "_:n1"},
		{NewLiteral("a\"b"), `"a\"b"`},
		{NewTypedLiteral("5", XSDInteger), `"5"^^<http://www.w3.org/2001/XMLSchema#integer>`},
		{NewLiteral("line\nbreak"), `"line\nbreak"`},
		{NewLiteral(`back\slash`), `"back\\slash"`},
	}
	for _, c := range cases {
		if got := c.term.String(); got != c.want {
			t.Errorf("String(%+v) = %q, want %q", c.term, got, c.want)
		}
	}
}

func TestTripleValid(t *testing.T) {
	good := NewTriple(ex("s"), ex("p"), NewLiteral("o"))
	if !good.Valid() {
		t.Fatal("expected valid triple")
	}
	bad := NewTriple(NewLiteral("s"), ex("p"), ex("o"))
	if bad.Valid() {
		t.Fatal("literal subject must be invalid")
	}
	bad2 := NewTriple(ex("s"), NewBlank("p"), ex("o"))
	if bad2.Valid() {
		t.Fatal("blank predicate must be invalid")
	}
}

func TestGraphAddHasRemove(t *testing.T) {
	g := NewGraph()
	tr := NewTriple(ex("s"), ex("p"), ex("o"))
	if !g.Add(tr) {
		t.Fatal("first Add returned false")
	}
	if g.Add(tr) {
		t.Fatal("duplicate Add returned true")
	}
	if g.Len() != 1 || !g.Has(tr) {
		t.Fatalf("Len=%d Has=%v", g.Len(), g.Has(tr))
	}
	if !g.Remove(tr) {
		t.Fatal("Remove returned false")
	}
	if g.Len() != 0 || g.Has(tr) {
		t.Fatalf("after remove Len=%d Has=%v", g.Len(), g.Has(tr))
	}
	if g.Remove(tr) {
		t.Fatal("second Remove returned true")
	}
	// Re-adding after removal must work.
	if !g.Add(tr) {
		t.Fatal("re-Add after Remove returned false")
	}
	if g.Len() != 1 {
		t.Fatalf("Len after re-add = %d", g.Len())
	}
}

func TestGraphAddInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on invalid triple")
		}
	}()
	NewGraph().Add(Triple{})
}

func buildSampleGraph() *Graph {
	g := NewGraph()
	g.Add(NewTriple(ex("bob"), A, ex("Student")))
	g.Add(NewTriple(ex("bob"), A, ex("Person")))
	g.Add(NewTriple(ex("alice"), A, ex("Professor")))
	g.Add(NewTriple(ex("bob"), ex("advisedBy"), ex("alice")))
	g.Add(NewTriple(ex("bob"), ex("regNo"), NewLiteral("Bs12")))
	g.Add(NewTriple(ex("alice"), ex("name"), NewLiteral("Alice")))
	g.Add(NewTriple(ex("Student"), NewIRI(RDFSSubClassOf), ex("Person")))
	return g
}

func TestGraphMatchPatterns(t *testing.T) {
	g := buildSampleGraph()
	s, p, o := ex("bob"), ex("advisedBy"), ex("alice")

	count := func(sp, pp, op *Term) int { return g.MatchCount(sp, pp, op) }

	if got := count(&s, nil, nil); got != 4 {
		t.Errorf("(s,?,?) = %d, want 4", got)
	}
	if got := count(nil, &p, nil); got != 1 {
		t.Errorf("(?,p,?) = %d, want 1", got)
	}
	if got := count(nil, nil, &o); got != 1 {
		t.Errorf("(?,?,o) = %d, want 1", got)
	}
	if got := count(&s, &p, &o); got != 1 {
		t.Errorf("(s,p,o) = %d, want 1", got)
	}
	if got := count(nil, nil, nil); got != g.Len() {
		t.Errorf("(?,?,?) = %d, want %d", got, g.Len())
	}
	missing := ex("nobody")
	if got := count(&missing, nil, nil); got != 0 {
		t.Errorf("missing subject matched %d triples", got)
	}
}

func TestGraphMatchEarlyStop(t *testing.T) {
	g := buildSampleGraph()
	n := 0
	g.Match(nil, nil, nil, func(Triple) bool {
		n++
		return n < 2
	})
	if n != 2 {
		t.Fatalf("early stop visited %d triples, want 2", n)
	}
}

func TestGraphMatchSkipsRemoved(t *testing.T) {
	g := buildSampleGraph()
	tr := NewTriple(ex("bob"), ex("regNo"), NewLiteral("Bs12"))
	g.Remove(tr)
	s := ex("bob")
	g.Match(&s, nil, nil, func(got Triple) bool {
		if got == tr {
			t.Fatalf("matched removed triple %v", got)
		}
		return true
	})
}

func TestObjectsSubjectsHelpers(t *testing.T) {
	g := buildSampleGraph()
	objs := g.Objects(ex("bob"), A)
	if len(objs) != 2 {
		t.Fatalf("Objects = %v", objs)
	}
	subs := g.Subjects(A, ex("Student"))
	if len(subs) != 1 || subs[0] != ex("bob") {
		t.Fatalf("Subjects = %v", subs)
	}
	if got := g.TypesOf(ex("alice")); len(got) != 1 || got[0] != ex("Professor") {
		t.Fatalf("TypesOf = %v", got)
	}
	if got := g.InstancesOf(ex("Professor")); len(got) != 1 || got[0] != ex("alice") {
		t.Fatalf("InstancesOf = %v", got)
	}
}

func TestClassesAndPredicates(t *testing.T) {
	g := buildSampleGraph()
	classes := g.Classes()
	want := map[Term]bool{ex("Student"): true, ex("Person"): true, ex("Professor"): true}
	if len(classes) != len(want) {
		t.Fatalf("Classes = %v", classes)
	}
	for _, c := range classes {
		if !want[c] {
			t.Fatalf("unexpected class %v", c)
		}
	}
	preds := g.Predicates()
	if len(preds) != 5 { // type, advisedBy, regNo, name, subClassOf
		t.Fatalf("Predicates = %v", preds)
	}
}

func TestSuperClassesAndIsInstanceOf(t *testing.T) {
	g := buildSampleGraph()
	g.Add(NewTriple(ex("Person"), NewIRI(RDFSSubClassOf), ex("Agent")))
	sups := g.SuperClasses(ex("Student"))
	if len(sups) != 2 {
		t.Fatalf("SuperClasses = %v", sups)
	}
	if !g.IsInstanceOf(ex("bob"), ex("Agent")) {
		t.Fatal("bob should be an Agent via Student ⊑ Person ⊑ Agent")
	}
	if g.IsInstanceOf(ex("alice"), ex("Agent")) {
		t.Fatal("alice has no subclass path to Agent")
	}
}

func TestSuperClassesCycleSafe(t *testing.T) {
	g := NewGraph()
	sub := NewIRI(RDFSSubClassOf)
	g.Add(NewTriple(ex("A"), sub, ex("B")))
	g.Add(NewTriple(ex("B"), sub, ex("A")))
	sups := g.SuperClasses(ex("A"))
	if len(sups) != 1 || sups[0] != ex("B") {
		t.Fatalf("cyclic SuperClasses = %v", sups)
	}
}

func TestGraphEqualAndClone(t *testing.T) {
	g := buildSampleGraph()
	c := g.Clone()
	if !g.Equal(c) || !c.Equal(g) {
		t.Fatal("clone not equal to original")
	}
	c.Add(NewTriple(ex("x"), ex("p"), ex("y")))
	if g.Equal(c) {
		t.Fatal("graphs with different sizes reported equal")
	}
	d := g.Clone()
	d.Remove(NewTriple(ex("bob"), A, ex("Person")))
	d.Add(NewTriple(ex("bob"), A, ex("Robot")))
	if g.Equal(d) {
		t.Fatal("graphs with same size, different triples reported equal")
	}
}

func TestAddAll(t *testing.T) {
	g := buildSampleGraph()
	h := NewGraph()
	h.Add(NewTriple(ex("bob"), A, ex("Student"))) // overlap
	h.Add(NewTriple(ex("new"), ex("p"), NewLiteral("v")))
	added := g.AddAll(h)
	if added != 1 {
		t.Fatalf("AddAll added %d, want 1", added)
	}
}

func TestDictInternStable(t *testing.T) {
	d := NewDict()
	a := d.Intern(ex("a"))
	b := d.Intern(ex("b"))
	if a == b {
		t.Fatal("distinct terms share an id")
	}
	if d.Intern(ex("a")) != a {
		t.Fatal("re-intern changed id")
	}
	if d.Term(a) != ex("a") {
		t.Fatal("Term(id) mismatch")
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d", d.Len())
	}
}

// Property: for any random batch of triples, the graph contains exactly the
// distinct ones, Match(nil,nil,nil) enumerates them all, and removal of a
// subset leaves exactly the complement.
func TestQuickGraphSetSemantics(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g := NewGraph()
		want := make(map[Triple]bool)
		var all []Triple
		for i := 0; i < int(n)+1; i++ {
			tr := NewTriple(
				ex(fmt.Sprintf("s%d", rng.Intn(8))),
				ex(fmt.Sprintf("p%d", rng.Intn(4))),
				NewLiteral(fmt.Sprintf("v%d", rng.Intn(8))),
			)
			g.Add(tr)
			if !want[tr] {
				want[tr] = true
				all = append(all, tr)
			}
		}
		if g.Len() != len(want) {
			return false
		}
		// Remove a random half.
		for _, tr := range all {
			if rng.Intn(2) == 0 {
				g.Remove(tr)
				delete(want, tr)
			}
		}
		if g.Len() != len(want) {
			return false
		}
		got := make(map[Triple]bool)
		g.ForEach(func(tr Triple) bool { got[tr] = true; return true })
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestEscapeLiteral(t *testing.T) {
	cases := map[string]string{
		"plain":     "plain",
		"a\"b":      `a\"b`,
		"a\\b":      `a\\b`,
		"a\nb":      `a\nb`,
		"a\rb":      `a\rb`,
		"a\tb":      `a\tb`,
		"ünïcødé ✓": "ünïcødé ✓",
	}
	for in, want := range cases {
		if got := EscapeLiteral(in); got != want {
			t.Errorf("EscapeLiteral(%q) = %q, want %q", in, got, want)
		}
	}
}
