package rdf

import (
	"fmt"
	"testing"
)

func tr(i int) Triple {
	return NewTriple(NewIRI(fmt.Sprintf("s%d", i)), NewIRI("p"), NewIRI(fmt.Sprintf("o%d", i)))
}

func TestIndexOfTracksAdmissionOrder(t *testing.T) {
	g := NewGraph()
	for i := 0; i < 5; i++ {
		g.Add(tr(i))
	}
	for i := 0; i < 5; i++ {
		idx, ok := g.IndexOf(tr(i))
		if !ok || idx != int32(i) {
			t.Fatalf("IndexOf(tr(%d)) = %d, %v", i, idx, ok)
		}
	}
	g.Remove(tr(2))
	if _, ok := g.IndexOf(tr(2)); ok {
		t.Fatal("IndexOf found a tombstoned triple")
	}
	g.Add(tr(2)) // re-admitted at the end
	idx, ok := g.IndexOf(tr(2))
	if !ok || idx != 5 {
		t.Fatalf("re-added triple got index %d, want 5", idx)
	}
}

func TestUnremoveRestoresExactOrder(t *testing.T) {
	g := NewGraph()
	for i := 0; i < 4; i++ {
		g.Add(tr(i))
	}
	idx, _ := g.IndexOf(tr(1))
	g.Remove(tr(1))
	if !g.Unremove(idx, tr(1)) {
		t.Fatal("Unremove refused a valid tombstone")
	}
	var order []int
	g.ForEach(func(x Triple) bool {
		var n int
		fmt.Sscanf(x.S.Value, "s%d", &n)
		order = append(order, n)
		return true
	})
	if fmt.Sprint(order) != "[0 1 2 3]" {
		t.Fatalf("order after Unremove = %v", order)
	}
	// Unremove must refuse when the triple was re-added elsewhere.
	g.Remove(tr(1))
	g.Add(tr(1))
	if g.Unremove(idx, tr(1)) {
		t.Fatal("Unremove resurrected a slot for a re-added triple")
	}
}

func TestTruncateFromUndoesAdds(t *testing.T) {
	g := NewGraph()
	for i := 0; i < 3; i++ {
		g.Add(tr(i))
	}
	n := g.NumSlots()
	g.Remove(tr(0))
	g.Add(tr(0)) // slot 3
	g.Add(tr(9)) // slot 4
	g.TruncateFrom(n)
	if g.NumSlots() != n {
		t.Fatalf("NumSlots = %d, want %d", g.NumSlots(), n)
	}
	if g.Has(tr(0)) || g.Has(tr(9)) {
		t.Fatal("truncated triples still present")
	}
	// The tombstone for tr(0) survives truncation and can be resurrected.
	if !g.Unremove(0, tr(0)) {
		t.Fatal("Unremove after truncate failed")
	}
	if g.Len() != 3 {
		t.Fatalf("Len = %d, want 3", g.Len())
	}
	// Subject posting list for tr(9)'s subject must be clean for re-use.
	g.Add(tr(9))
	if idx, ok := g.IndexOf(tr(9)); !ok || idx != int32(n) {
		t.Fatalf("re-add after truncate got index %d, want %d", idx, n)
	}
}

func TestMatchIndexedAgreesWithIndexOf(t *testing.T) {
	g := NewGraph()
	for i := 0; i < 6; i++ {
		g.Add(tr(i))
	}
	g.Remove(tr(3))
	p := NewIRI("p")
	g.MatchIndexed(nil, &p, nil, func(idx int32, x Triple) bool {
		want, ok := g.IndexOf(x)
		if !ok || want != idx {
			t.Fatalf("MatchIndexed idx %d disagrees with IndexOf %d (%v)", idx, want, ok)
		}
		return true
	})
	s := NewIRI("s4")
	count := 0
	g.MatchIndexed(&s, nil, nil, func(idx int32, x Triple) bool {
		count++
		if idx != 4 {
			t.Fatalf("subject-bound MatchIndexed idx = %d, want 4", idx)
		}
		return true
	})
	if count != 1 {
		t.Fatalf("subject-bound MatchIndexed matched %d triples", count)
	}
}
