// Out-of-core graph representation (DESIGN.md §10). Spill moves the three
// heavy resident structures of a Graph — the term dictionary's strings, the
// triple log, and the subject/predicate/object posting lists — into a
// CRC-framed on-disk generation, leaving behind a small in-memory "tail"
// that absorbs writes arriving after the spill. Slot indexes and term ids
// are preserved exactly, so every accessor (ForEach, Match, EncodedAt, CSV
// export, the evaluators) observes the same admission order and the same
// bytes as the fully-resident graph: spilling is invisible to output.
//
// A generation is a set of flat files sharing a "gen-N." prefix plus a
// MANIFEST committed last and atomically; a crash mid-spill leaves the
// previous MANIFEST (or none) pointing at complete files, never torn ones.
// All writes go through the ckpt.FS seam so faultio can inject faults.
package rdf

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"runtime"
	"sync"

	"github.com/s3pg/s3pg/internal/ckpt"
	"github.com/s3pg/s3pg/internal/obs"
)

// Spill observability (obs.Default registry): bytes written to spill files,
// posting segments written, and completed spill operations.
var (
	cSpillBytes    = obs.Default.Counter("rdf.spill.bytes")
	cSpillSegments = obs.Default.Counter("rdf.spill.segments")
	cSpillOps      = obs.Default.Counter("rdf.spill.ops")
)

// ErrNoSpill reports that a directory holds no committed spill generation.
var ErrNoSpill = errors.New("rdf: no committed spill generation")

const (
	spillVersion = 1
	manifestName = "MANIFEST"

	// pageTriples is the triple-log page granularity: 4096 triples = 48 KiB
	// payload per frame, a good unit for both sequential scans and the LRU.
	pageTriples    = 4096
	pageFrameBytes = frameOverhead + 12*pageTriples
	pageCacheSize  = 32

	// postSegTarget cuts a posting segment once its payload reaches this
	// size; segments are the unit of paged posting reads ("coldest segments
	// live on disk") and of CRC verification.
	postSegTarget = 128 << 10
	segCacheSize  = 32
)

// spillManifest is the commit record of a generation, written last.
type spillManifest struct {
	Version  int    `json:"version"`
	Gen      int    `json:"gen"`
	Prefix   string `json:"prefix"`
	Terms    int    `json:"terms"`
	Slots    int    `json:"slots"`
	NDead    int    `json:"n_dead"`
	Segments [3]int `json:"segments"` // posting segment count per index (s,p,o)
}

func (m *spillManifest) file(name string) string { return m.Prefix + name }

// graphSpill is the resident handle on a spilled generation: open files,
// bounded caches, and the mutable tombstone bitset over spilled slots.
type graphSpill struct {
	dir   string
	gen   int
	slots int
	log   *pageFile
	post  [3]*postIndex
	dead  []uint64 // bitset over [0,slots); mutable (Remove after spill)
}

// share returns a handle over the same immutable generation with an
// independent tombstone bitset, for Clone.
func (sp *graphSpill) share() *graphSpill {
	dead := make([]uint64, len(sp.dead))
	copy(dead, sp.dead)
	return &graphSpill{dir: sp.dir, gen: sp.gen, slots: sp.slots, log: sp.log, post: sp.post, dead: dead}
}

func (sp *graphSpill) isDead(slot int) bool {
	return sp.dead[slot>>6]&(1<<(uint(slot)&63)) != 0
}

func (sp *graphSpill) setDead(slot int) {
	sp.dead[slot>>6] |= 1 << (uint(slot) & 63)
}

// pageFile reads the CRC-framed triple log. Frames are fixed-size (the last
// may be short), so a page's offset is computed, not indexed.
type pageFile struct {
	path  string
	f     *os.File
	slots int

	mu    sync.Mutex
	cache *lruCache[[]encTriple]
}

func openPageFile(path string, slots int) (*pageFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	p := &pageFile{path: path, f: f, slots: slots, cache: newLRU[[]encTriple](pageCacheSize)}
	runtime.SetFinalizer(p, func(p *pageFile) { p.f.Close() })
	return p, nil
}

func (p *pageFile) numPages() int { return (p.slots + pageTriples - 1) / pageTriples }

func (p *pageFile) decodePage(pg int) ([]encTriple, error) {
	payload, _, err := readFrameAt(p.f, int64(pg)*pageFrameBytes, 12*pageTriples)
	if err != nil {
		return nil, err
	}
	count := pageTriples
	if rem := p.slots - pg*pageTriples; rem < count {
		count = rem
	}
	if len(payload) != 12*count {
		return nil, &CorruptSpillError{File: p.path, Offset: int64(pg) * pageFrameBytes,
			Detail: fmt.Sprintf("page %d holds %d bytes, want %d", pg, len(payload), 12*count)}
	}
	ts := make([]encTriple, count)
	for i := range ts {
		b := payload[12*i:]
		ts[i] = encTriple{
			s: TermID(binary.LittleEndian.Uint32(b)),
			p: TermID(binary.LittleEndian.Uint32(b[4:])),
			o: TermID(binary.LittleEndian.Uint32(b[8:])),
		}
	}
	return ts, nil
}

// page returns decoded page pg through the LRU; corruption panics (see
// termArena.block for the rationale).
func (p *pageFile) page(pg int) []encTriple {
	p.mu.Lock()
	if ts, ok := p.cache.get(pg); ok {
		p.mu.Unlock()
		return ts
	}
	p.mu.Unlock()
	ts, err := p.decodePage(pg)
	if err != nil {
		panic(err.Error())
	}
	p.mu.Lock()
	p.cache.put(pg, ts)
	p.mu.Unlock()
	return ts
}

func (p *pageFile) triple(slot int) encTriple {
	return p.page(slot / pageTriples)[slot%pageTriples]
}

// postIndex reads one spilled posting-list file: delta/varint-encoded
// segments, each covering a contiguous ascending TermID range, found by
// binary search over the resident segment directory.
type postIndex struct {
	path string
	f    *os.File
	segs []postSeg

	mu    sync.Mutex
	cache *lruCache[map[TermID][]int32]
}

type postSeg struct {
	first, last TermID
	off         int64
}

func openPostIndex(path string, segs []postSeg) (*postIndex, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	pi := &postIndex{path: path, f: f, segs: segs, cache: newLRU[map[TermID][]int32](segCacheSize)}
	runtime.SetFinalizer(pi, func(pi *postIndex) { pi.f.Close() })
	return pi, nil
}

// appendPostEntry encodes one term's posting list: term-id delta from the
// previous entry, list length, then slot deltas (slots ascend strictly, the
// admission-order invariant, so deltas are positive and varint-small).
func appendPostEntry(dst []byte, idDelta uint64, list []int32) []byte {
	dst = appendUvarint(dst, idDelta)
	dst = appendUvarint(dst, uint64(len(list)))
	prev := int32(0)
	for i, v := range list {
		if i == 0 {
			dst = appendUvarint(dst, uint64(v))
		} else {
			dst = appendUvarint(dst, uint64(v-prev))
		}
		prev = v
	}
	return dst
}

func decodePostSegment(payload []byte, path string, off int64) (map[TermID][]int32, TermID, TermID, error) {
	fail := func(err error) (map[TermID][]int32, TermID, TermID, error) {
		return nil, 0, 0, &CorruptSpillError{File: path, Offset: off, Detail: err.Error()}
	}
	n, pos, err := readUvarint(payload, 0)
	if err != nil {
		return fail(err)
	}
	m := make(map[TermID][]int32, n)
	var first, last, id TermID
	for i := uint64(0); i < n; i++ {
		d, p2, err := readUvarint(payload, pos)
		if err != nil {
			return fail(err)
		}
		pos = p2
		if i == 0 {
			id = TermID(d)
			first = id
		} else {
			id += TermID(d)
		}
		last = id
		ln, p3, err := readUvarint(payload, pos)
		if err != nil {
			return fail(err)
		}
		pos = p3
		list := make([]int32, ln)
		var slot int32
		for j := range list {
			v, p4, err := readUvarint(payload, pos)
			if err != nil {
				return fail(err)
			}
			pos = p4
			if j == 0 {
				slot = int32(v)
			} else {
				slot += int32(v)
			}
			list[j] = slot
		}
		m[id] = list
	}
	if pos != len(payload) {
		return fail(fmt.Errorf("segment has %d trailing bytes", len(payload)-pos))
	}
	return m, first, last, nil
}

// segment returns decoded segment i through the LRU; corruption panics.
func (pi *postIndex) segment(i int) map[TermID][]int32 {
	pi.mu.Lock()
	if m, ok := pi.cache.get(i); ok {
		pi.mu.Unlock()
		return m
	}
	pi.mu.Unlock()
	payload, _, err := readFrameAt(pi.f, pi.segs[i].off, maxSpillPayload)
	if err != nil {
		panic(err.Error())
	}
	m, _, _, derr := decodePostSegment(payload, pi.path, pi.segs[i].off)
	if derr != nil {
		panic(derr.Error())
	}
	pi.mu.Lock()
	pi.cache.put(i, m)
	pi.mu.Unlock()
	return m
}

// posting returns the spilled posting list for id (nil when empty). The
// returned slice is shared cache state and must not be mutated.
func (pi *postIndex) posting(id TermID) []int32 {
	lo, hi := 0, len(pi.segs)
	for lo < hi {
		mid := (lo + hi) / 2
		if pi.segs[mid].last < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(pi.segs) || pi.segs[lo].first > id {
		return nil
	}
	return pi.segment(lo)[id]
}

// countingWriter tracks spill bytes as they stream to a file.
type countingWriter struct {
	w io.Writer
	n *int64
}

func (c countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	*c.n += int64(n)
	return n, err
}

// Spilled reports whether the graph has a disk-resident generation.
func (g *Graph) Spilled() bool { return g.spill != nil }

// SpillDir returns the directory of the current spill generation, or "".
func (g *Graph) SpillDir() string {
	if g.spill == nil {
		return ""
	}
	return g.spill.dir
}

// TailLen returns the number of triple slots admitted since the last spill
// (everything, for an unspilled graph): the resident write tail a further
// Spill would move to disk.
func (g *Graph) TailLen() int { return len(g.triples) }

// Spill writes the graph's dictionary, triple log, and posting lists to a
// new on-disk generation under dir and swaps the in-memory representation
// to paged reads over it, freeing the resident copies. Ids, slot indexes,
// and every iteration order are preserved exactly; the operation is
// output-invisible. fsys is the commit seam (nil = the real filesystem);
// every file is written atomically and the MANIFEST — written last — is the
// commit point, so a crash at any moment leaves the previous generation (or
// none) intact, never a torn one.
//
// Spill is a mutation: like Add/Remove it must not run concurrently with
// readers. Re-spilling an already-spilled graph folds the tail into a fresh
// generation. Graphs sharing this graph's Dict observe the dictionary's
// representation change but keep identical id assignments.
func (g *Graph) Spill(dir string, fsys ckpt.FS) (err error) {
	if fsys == nil {
		fsys = ckpt.OSFS
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	gen := 1
	if old, lerr := readManifest(dir); lerr == nil {
		gen = old.Gen + 1
	}
	if g.spill != nil && g.spill.gen >= gen {
		gen = g.spill.gen + 1
	}
	man := &spillManifest{
		Version: spillVersion,
		Gen:     gen,
		Prefix:  fmt.Sprintf("gen-%d.", gen),
		Terms:   g.dict.Len(),
		Slots:   g.numSlots(),
		NDead:   g.nDead,
	}
	var written int64
	commit := func(name string, fn func(io.Writer) error) error {
		path := filepath.Join(dir, man.file(name))
		return ckpt.WriteFileAtomicFS(fsys, path, 0o644, func(w io.Writer) error {
			return fn(countingWriter{w, &written})
		})
	}

	// 1. Term arena + block offset index.
	var blockOff []int64
	if err := commit("terms.arena", func(w io.Writer) error {
		var werr error
		blockOff, werr = writeArena(w, man.Terms, func(i int) Term { return g.dict.Term(TermID(i)) })
		return werr
	}); err != nil {
		return err
	}
	if err := commit("terms.idx", func(w io.Writer) error {
		payload := make([]byte, 8*len(blockOff))
		for i, off := range blockOff {
			binary.LittleEndian.PutUint64(payload[8*i:], uint64(off))
		}
		_, werr := w.Write(appendFrame(nil, payload))
		return werr
	}); err != nil {
		return err
	}

	// 2. Triple log pages.
	if err := commit("triples.log", func(w io.Writer) error {
		payload := make([]byte, 12*pageTriples)
		var frame []byte
		for base := 0; base < man.Slots; base += pageTriples {
			end := base + pageTriples
			if end > man.Slots {
				end = man.Slots
			}
			pp := payload[:12*(end-base)]
			for i := base; i < end; i++ {
				e := g.encAt(i)
				b := pp[12*(i-base):]
				binary.LittleEndian.PutUint32(b, uint32(e.s))
				binary.LittleEndian.PutUint32(b[4:], uint32(e.p))
				binary.LittleEndian.PutUint32(b[8:], uint32(e.o))
			}
			frame = appendFrame(frame[:0], pp)
			if _, werr := w.Write(frame); werr != nil {
				return werr
			}
		}
		return nil
	}); err != nil {
		return err
	}

	// 3. Posting-list segments, one file per index.
	var segDirs [3][]postSeg
	for k, name := range [3]string{"post.s", "post.p", "post.o"} {
		if err := commit(name, func(w io.Writer) error {
			var werr error
			segDirs[k], werr = g.writePostings(w, k, man.Terms)
			return werr
		}); err != nil {
			return err
		}
		man.Segments[k] = len(segDirs[k])
	}

	// 4. Tombstone bitset.
	nWords := (man.Slots + 63) / 64
	deadBits := make([]uint64, nWords)
	for i := 0; i < man.Slots; i++ {
		if g.slotDead(i) {
			deadBits[i>>6] |= 1 << (uint(i) & 63)
		}
	}
	if err := commit("dead.bits", func(w io.Writer) error {
		payload := make([]byte, 8*nWords)
		for i, word := range deadBits {
			binary.LittleEndian.PutUint64(payload[8*i:], word)
		}
		_, werr := w.Write(appendFrame(nil, payload))
		return werr
	}); err != nil {
		return err
	}

	// 5. MANIFEST: the commit point. Unlike the data files it is not
	// generation-prefixed — it is the single pointer that names the live
	// generation, atomically replaced.
	if err := ckpt.WriteFileAtomicFS(fsys, filepath.Join(dir, manifestName), 0o644, func(w io.Writer) error {
		return json.NewEncoder(w).Encode(man)
	}); err != nil {
		return err
	}

	// 6. Open the new generation and swap. The hash index is carried over
	// from the previous arena (ids are stable) and extended with the tail.
	arena, err := openArena(filepath.Join(dir, man.file("terms.arena")), man.Terms, blockOff, false)
	if err != nil {
		return err
	}
	runtime.SetFinalizer(arena, func(a *termArena) { a.close() })
	if prev := g.dict.arena; prev != nil {
		arena.hash = prev.hash
		arena.over = prev.over
	}
	for i, t := range g.dict.terms {
		arena.addHash(t, g.dict.base+TermID(i))
	}
	log, err := openPageFile(filepath.Join(dir, man.file("triples.log")), man.Slots)
	if err != nil {
		return err
	}
	sp := &graphSpill{dir: dir, gen: gen, slots: man.Slots, log: log, dead: deadBits}
	for k, name := range [3]string{"post.s", "post.p", "post.o"} {
		sp.post[k], err = openPostIndex(filepath.Join(dir, man.file(name)), segDirs[k])
		if err != nil {
			return err
		}
	}

	oldGenFiles := g.spillGenFiles()
	g.dict.arena = arena
	g.dict.base = TermID(man.Terms)
	g.dict.ids = make(map[Term]TermID)
	g.dict.terms = nil
	g.spill = sp
	g.triples = nil
	g.dead = nil
	g.present = make(map[encTriple]int32)
	g.bySubj = make(map[TermID][]int32)
	g.byPred = make(map[TermID][]int32)
	g.byObj = make(map[TermID][]int32)

	// Best-effort cleanup of the superseded generation. Clones sharing it
	// keep their open handles (the data outlives the directory entry).
	for _, f := range oldGenFiles {
		fsys.Remove(f)
	}

	segs := int64(man.Segments[0] + man.Segments[1] + man.Segments[2])
	cSpillBytes.Add(written)
	cSpillSegments.Add(segs)
	cSpillOps.Inc()
	return nil
}

// spillGenFiles lists the on-disk files of the graph's current generation.
func (g *Graph) spillGenFiles() []string {
	if g.spill == nil {
		return nil
	}
	prefix := fmt.Sprintf("gen-%d.", g.spill.gen)
	var out []string
	for _, name := range [...]string{"terms.arena", "terms.idx", "triples.log", "post.s", "post.p", "post.o", "dead.bits"} {
		out = append(out, filepath.Join(g.spill.dir, prefix+name))
	}
	return out
}

// writePostings streams index k's posting lists (merged spilled + tail, ids
// ascending) as CRC-framed segments and returns the segment directory.
func (g *Graph) writePostings(w io.Writer, k int, terms int) ([]postSeg, error) {
	var (
		segs     []postSeg
		payload  []byte
		frame    []byte
		off      int64
		nEntries uint64
		first    TermID
		prevID   TermID
	)
	flush := func(last TermID) error {
		if nEntries == 0 {
			return nil
		}
		full := appendUvarint(nil, nEntries)
		full = append(full, payload...)
		frame = appendFrame(frame[:0], full)
		if _, err := w.Write(frame); err != nil {
			return err
		}
		segs = append(segs, postSeg{first: first, last: last, off: off})
		off += int64(len(frame))
		payload = payload[:0]
		nEntries = 0
		return nil
	}
	for id := TermID(0); int(id) < terms; id++ {
		list := g.postingFor(k, id)
		if len(list) == 0 {
			continue
		}
		if nEntries == 0 {
			first = id
			payload = appendPostEntry(payload, uint64(id), list)
		} else {
			payload = appendPostEntry(payload, uint64(id-prevID), list)
		}
		prevID = id
		nEntries++
		if len(payload) >= postSegTarget {
			if err := flush(id); err != nil {
				return nil, err
			}
		}
	}
	if err := flush(prevID); err != nil {
		return nil, err
	}
	return segs, nil
}

func readManifest(dir string) (*spillManifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, err
	}
	man := &spillManifest{}
	if err := json.Unmarshal(data, man); err != nil {
		return nil, fmt.Errorf("rdf: spill manifest %s: %w", filepath.Join(dir, manifestName), err)
	}
	if man.Version != spillVersion {
		return nil, fmt.Errorf("rdf: spill manifest version %d, want %d", man.Version, spillVersion)
	}
	return man, nil
}

// LoadSpilled opens the committed spill generation under dir as a Graph,
// verifying the CRC of every frame in every file before returning: a
// flipped bit anywhere fails the load loudly with a CorruptSpillError (and
// the offending file renamed aside, quarantined) rather than serving wrong
// data. The returned graph has an empty write tail; it reflects the state
// at spill time.
func LoadSpilled(dir string) (*Graph, error) {
	man, err := readManifest(dir)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("%w under %s", ErrNoSpill, dir)
		}
		return nil, err
	}
	g, err := loadGeneration(dir, man)
	if err != nil {
		var ce *CorruptSpillError
		if errors.As(err, &ce) {
			os.Rename(ce.File, ce.File+".quarantined")
		}
		return nil, err
	}
	return g, nil
}

func loadGeneration(dir string, man *spillManifest) (*Graph, error) {
	path := func(name string) string { return filepath.Join(dir, man.file(name)) }

	// Block offset index.
	idxF, err := os.Open(path("terms.idx"))
	if err != nil {
		return nil, err
	}
	payload, _, err := readFrameAt(idxF, 0, maxSpillPayload)
	idxF.Close()
	if err != nil {
		return nil, err
	}
	wantBlocks := (man.Terms + arenaBlockTerms - 1) / arenaBlockTerms
	if len(payload) != 8*wantBlocks {
		return nil, &CorruptSpillError{File: path("terms.idx"), Offset: 0,
			Detail: fmt.Sprintf("offset table holds %d blocks, manifest implies %d", len(payload)/8, wantBlocks)}
	}
	blockOff := make([]int64, wantBlocks)
	for i := range blockOff {
		blockOff[i] = int64(binary.LittleEndian.Uint64(payload[8*i:]))
	}

	// Arena: full scan verifies every block and builds the hash index.
	arena, err := openArena(path("terms.arena"), man.Terms, blockOff, true)
	if err != nil {
		return nil, err
	}
	runtime.SetFinalizer(arena, func(a *termArena) { a.close() })

	// Triple log: verify every page.
	log, err := openPageFile(path("triples.log"), man.Slots)
	if err != nil {
		arena.close()
		return nil, err
	}
	for pg := 0; pg < log.numPages(); pg++ {
		if _, err := log.decodePage(pg); err != nil {
			return nil, err
		}
	}

	// Posting files: scan segments sequentially, verifying CRCs and
	// rebuilding each directory from the decoded id ranges.
	sp := &graphSpill{dir: dir, gen: man.Gen, slots: man.Slots}
	sp.log = log
	for k, name := range [3]string{"post.s", "post.p", "post.o"} {
		f, err := os.Open(path(name))
		if err != nil {
			return nil, err
		}
		size, err := f.Seek(0, io.SeekEnd)
		if err != nil {
			f.Close()
			return nil, err
		}
		var segs []postSeg
		for off := int64(0); off < size; {
			payload, next, err := readFrameAt(f, off, maxSpillPayload)
			if err != nil {
				f.Close()
				return nil, err
			}
			_, firstID, lastID, derr := decodePostSegment(payload, path(name), off)
			if derr != nil {
				f.Close()
				return nil, derr
			}
			segs = append(segs, postSeg{first: firstID, last: lastID, off: off})
			off = next
		}
		f.Close()
		if len(segs) != man.Segments[k] {
			return nil, &CorruptSpillError{File: path(name), Offset: 0,
				Detail: fmt.Sprintf("found %d segments, manifest records %d", len(segs), man.Segments[k])}
		}
		if sp.post[k], err = openPostIndex(path(name), segs); err != nil {
			return nil, err
		}
	}

	// Tombstones.
	deadF, err := os.Open(path("dead.bits"))
	if err != nil {
		return nil, err
	}
	payload, _, err = readFrameAt(deadF, 0, maxSpillPayload)
	deadF.Close()
	if err != nil {
		return nil, err
	}
	nWords := (man.Slots + 63) / 64
	if len(payload) != 8*nWords {
		return nil, &CorruptSpillError{File: path("dead.bits"), Offset: 0,
			Detail: fmt.Sprintf("bitset holds %d words, want %d", len(payload)/8, nWords)}
	}
	sp.dead = make([]uint64, nWords)
	nDead := 0
	for i := range sp.dead {
		word := binary.LittleEndian.Uint64(payload[8*i:])
		sp.dead[i] = word
		for ; word != 0; word &= word - 1 {
			nDead++
		}
	}
	if nDead != man.NDead {
		return nil, &CorruptSpillError{File: path("dead.bits"), Offset: 0,
			Detail: fmt.Sprintf("bitset has %d tombstones, manifest records %d", nDead, man.NDead)}
	}

	d := &Dict{ids: make(map[Term]TermID), arena: arena, base: TermID(man.Terms)}
	g := NewGraphWithDict(d)
	g.spill = sp
	g.nDead = man.NDead
	return g, nil
}
