package rdf

import (
	"runtime"

	"github.com/s3pg/s3pg/internal/ckpt"
	"github.com/s3pg/s3pg/internal/obs"
)

// gSpillPressure is 1 while the governor's latch is set (heap above the low
// watermark since last tripping the high one), 0 otherwise.
var gSpillPressure = obs.Default.Gauge("rdf.spill.pressure")

// SpillConfig parameterizes a memory-pressure Governor.
type SpillConfig struct {
	// Dir receives the spill generations.
	Dir string
	// FS is the commit seam for spill writes (nil = real filesystem).
	FS ckpt.FS
	// HighMB is the heap watermark (HeapAlloc, MiB) that triggers a spill.
	HighMB int
	// LowMB clears the pressure latch once the post-spill heap drops under
	// it; 0 defaults to 80% of HighMB. The high/low gap is the hysteresis
	// band that keeps spilling (and admission decisions derived from
	// UnderPressure) from flapping around a single threshold.
	LowMB int
	// MinTailTriples is the smallest resident tail worth a re-spill;
	// below it a spill could not meaningfully shrink the heap. 0 defaults
	// to 10000.
	MinTailTriples int
	// ReadHeap overrides the heap sampler (tests); nil = runtime.MemStats.
	ReadHeap func() uint64
}

// Governor watches the heap and spills a graph to disk when the high
// watermark is crossed, letting the process degrade to out-of-core reads
// and continue instead of dying at the limit. It is single-goroutine, like
// the graph mutations it performs.
type Governor struct {
	cfg     SpillConfig
	latched bool
	spills  int
}

// NewGovernor returns a governor over the config, applying defaults.
func NewGovernor(cfg SpillConfig) *Governor {
	if cfg.LowMB <= 0 || cfg.LowMB > cfg.HighMB {
		cfg.LowMB = cfg.HighMB * 4 / 5
	}
	if cfg.MinTailTriples <= 0 {
		cfg.MinTailTriples = 10000
	}
	if cfg.ReadHeap == nil {
		cfg.ReadHeap = func() uint64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return ms.HeapAlloc
		}
	}
	return &Governor{cfg: cfg}
}

// Maybe spills g if the heap is over the high watermark and the graph has a
// tail worth spilling. It returns whether a spill ran. A graph whose tail
// is already on disk cannot be shrunk further — Maybe then reports no spill
// and leaves the pressure latch set; the caller keeps running (degraded,
// not dead), which is the point of the governor.
func (gv *Governor) Maybe(g *Graph) (bool, error) {
	heap := gv.cfg.ReadHeap()
	if !gv.latched {
		if heap <= uint64(gv.cfg.HighMB)<<20 {
			return false, nil
		}
		gv.latched = true
		gSpillPressure.Set(1)
	} else if heap <= uint64(gv.cfg.LowMB)<<20 {
		gv.latched = false
		gSpillPressure.Set(0)
		return false, nil
	}
	if heap <= uint64(gv.cfg.HighMB)<<20 {
		// Inside the hysteresis band: under pressure but not spill-worthy.
		return false, nil
	}
	if g.Spilled() && g.TailLen() < gv.cfg.MinTailTriples {
		return false, nil
	}
	if err := g.Spill(gv.cfg.Dir, gv.cfg.FS); err != nil {
		return false, err
	}
	gv.spills++
	runtime.GC()
	if gv.cfg.ReadHeap() <= uint64(gv.cfg.LowMB)<<20 {
		gv.latched = false
		gSpillPressure.Set(0)
	}
	return true, nil
}

// UnderPressure reports the hysteresis latch: true from the moment the high
// watermark trips until the heap falls back under the low one.
func (gv *Governor) UnderPressure() bool { return gv.latched }

// Spills returns the number of spill operations the governor has run.
func (gv *Governor) Spills() int { return gv.spills }

// Dir returns the spill directory the governor writes generations to.
func (gv *Governor) Dir() string { return gv.cfg.Dir }
