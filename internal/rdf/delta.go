package rdf

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Delta is one atomic batch of triple-level changes to an RDF graph: the
// typed form of a SPARQL Update `DELETE DATA { … } ; INSERT DATA { … }`
// request. Deletions apply before insertions, matching the SPARQL Update
// semantics for a request that carries both.
//
// A Delta is a plain value: it does not reference a graph, and the same
// Delta can be applied to any graph (applying is idempotent at the RDF
// level — deleting an absent triple and inserting a present one are both
// no-ops).
type Delta struct {
	Deletes []Triple
	Inserts []Triple
}

// Empty reports whether the delta carries no changes.
func (d *Delta) Empty() bool { return len(d.Deletes) == 0 && len(d.Inserts) == 0 }

// Len returns the total number of change statements.
func (d *Delta) Len() int { return len(d.Deletes) + len(d.Inserts) }

// deltaHeader is the version-bearing first line of the serialized form.
const deltaHeader = "S3PG-DELTA 1"

// WriteTo serializes the delta in a line-oriented, versioned format: a
// header line, then one N-Triples statement per line prefixed with "D "
// (delete) or "I " (insert). The encoding is canonical — terms are written
// in N-Triples syntax with escaped lexicals — so the byte form round-trips
// exactly through ReadDeltaFrom and is safe to frame inside a WAL record.
func (d *Delta) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	count := func(c int, err error) error {
		n += int64(c)
		return err
	}
	if err := count(fmt.Fprintf(bw, "%s %d %d\n", deltaHeader, len(d.Deletes), len(d.Inserts))); err != nil {
		return n, err
	}
	for _, t := range d.Deletes {
		if err := count(fmt.Fprintf(bw, "D %s\n", t.String())); err != nil {
			return n, err
		}
	}
	for _, t := range d.Inserts {
		if err := count(fmt.Fprintf(bw, "I %s\n", t.String())); err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// Encode returns the serialized form of WriteTo as a byte slice.
func (d *Delta) Encode() []byte {
	var sb strings.Builder
	if _, err := d.WriteTo(&sb); err != nil {
		// strings.Builder never fails; a non-nil error is a bug.
		panic(err)
	}
	return []byte(sb.String())
}

// DecodeDelta parses the serialized form produced by WriteTo/Encode.
// The caller supplies parseLine to decode one N-Triples statement (the rio
// package provides it; taking it as a parameter keeps rdf free of a parser
// dependency cycle).
func DecodeDelta(data []byte, parseLine func(string) (Triple, error)) (*Delta, error) {
	lines := strings.Split(string(data), "\n")
	if len(lines) == 0 {
		return nil, fmt.Errorf("rdf: empty delta")
	}
	var nDel, nIns int
	if _, err := fmt.Sscanf(lines[0], deltaHeader+" %d %d", &nDel, &nIns); err != nil {
		return nil, fmt.Errorf("rdf: bad delta header %q: %v", lines[0], err)
	}
	if nDel < 0 || nIns < 0 || nDel+nIns > len(lines)-1 {
		return nil, fmt.Errorf("rdf: delta header counts (%d, %d) exceed payload", nDel, nIns)
	}
	d := &Delta{}
	for i := 1; i <= nDel+nIns; i++ {
		line := lines[i]
		if len(line) < 2 || (line[0] != 'D' && line[0] != 'I') || line[1] != ' ' {
			return nil, fmt.Errorf("rdf: delta line %d: bad prefix %q", i, line)
		}
		t, err := parseLine(line[2:])
		if err != nil {
			return nil, fmt.Errorf("rdf: delta line %d: %v", i, err)
		}
		if line[0] == 'D' {
			if len(d.Deletes) >= nDel {
				return nil, fmt.Errorf("rdf: delta line %d: more deletes than the header declared", i)
			}
			d.Deletes = append(d.Deletes, t)
		} else {
			if len(d.Inserts) >= nIns {
				return nil, fmt.Errorf("rdf: delta line %d: more inserts than the header declared", i)
			}
			d.Inserts = append(d.Inserts, t)
		}
	}
	if len(d.Deletes) != nDel || len(d.Inserts) != nIns {
		return nil, fmt.Errorf("rdf: delta payload has %d deletes / %d inserts, header declared %d / %d",
			len(d.Deletes), len(d.Inserts), nDel, nIns)
	}
	return d, nil
}
