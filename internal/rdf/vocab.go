package rdf

// Well-known vocabulary IRIs used across the system.
const (
	RDFNS  = "http://www.w3.org/1999/02/22-rdf-syntax-ns#"
	RDFSNS = "http://www.w3.org/2000/01/rdf-schema#"
	XSDNS  = "http://www.w3.org/2001/XMLSchema#"
	SHNS   = "http://www.w3.org/ns/shacl#"

	RDFType       = RDFNS + "type"
	RDFLangString = RDFNS + "langString"
	RDFFirst      = RDFNS + "first"
	RDFRest       = RDFNS + "rest"
	RDFNil        = RDFNS + "nil"

	RDFSClass      = RDFSNS + "Class"
	RDFSSubClassOf = RDFSNS + "subClassOf"
	RDFSLiteral    = RDFSNS + "Literal"
	RDFSLabel      = RDFSNS + "label"

	XSDString   = XSDNS + "string"
	XSDBoolean  = XSDNS + "boolean"
	XSDInteger  = XSDNS + "integer"
	XSDInt      = XSDNS + "int"
	XSDLong     = XSDNS + "long"
	XSDDecimal  = XSDNS + "decimal"
	XSDDouble   = XSDNS + "double"
	XSDFloat    = XSDNS + "float"
	XSDDate     = XSDNS + "date"
	XSDDateTime = XSDNS + "dateTime"
	XSDGYear    = XSDNS + "gYear"
	XSDAnyURI   = XSDNS + "anyURI"
)

// SHACL vocabulary IRIs (the core constraint components of Definition 2.2).
const (
	SHNodeShape     = SHNS + "NodeShape"
	SHPropertyShape = SHNS + "PropertyShape"
	SHTargetClass   = SHNS + "targetClass"
	SHProperty      = SHNS + "property"
	SHPath          = SHNS + "path"
	SHDatatype      = SHNS + "datatype"
	SHClass         = SHNS + "class"
	SHNode          = SHNS + "node"
	SHNodeKindProp  = SHNS + "nodeKind"
	SHOr            = SHNS + "or"
	SHMinCount      = SHNS + "minCount"
	SHMaxCount      = SHNS + "maxCount"
	SHIRIKind       = SHNS + "IRI"
	SHLiteralKind   = SHNS + "Literal"
	SHBlankNodeKind = SHNS + "BlankNode"
)

// A is the type predicate term (rdf:type), named after the Turtle shorthand.
var A = NewIRI(RDFType)
