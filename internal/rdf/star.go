package rdf

import (
	"fmt"
	"strings"
)

// RDF-star quoted triples are encoded inside a Term's Value field with a
// structured (not textual) encoding so that terms remain plain comparable
// values: the three components' fields are joined with ASCII separators.
// The encoding is an implementation detail; NewTripleTerm and AsTriple are
// the only ways in and out.

const (
	starFieldSep = "\x1f" // between the fields of one component term
	starTermSep  = "\x1e" // between the three component terms
)

// NewTripleTerm returns a quoted-triple term for the statement. Components
// must form a valid triple and must not themselves be quoted triples
// (nesting is rejected, keeping the transformation's annotation mapping
// well-defined).
func NewTripleTerm(t Triple) (Term, error) {
	if t.S.IsTripleTerm() || t.P.IsTripleTerm() || t.O.IsTripleTerm() {
		return Term{}, fmt.Errorf("rdf: nested quoted triples are not supported")
	}
	if !t.Valid() {
		return Term{}, fmt.Errorf("rdf: quoted triple %v is not a valid statement", t)
	}
	parts := make([]string, 3)
	for i, c := range []Term{t.S, t.P, t.O} {
		if strings.ContainsAny(c.Value, starFieldSep+starTermSep) ||
			strings.ContainsAny(c.Datatype, starFieldSep+starTermSep) ||
			strings.ContainsAny(c.Lang, starFieldSep+starTermSep) {
			return Term{}, fmt.Errorf("rdf: component %v contains reserved control characters", c)
		}
		parts[i] = strings.Join([]string{
			string(rune('0' + c.Kind)), c.Value, c.Datatype, c.Lang,
		}, starFieldSep)
	}
	return Term{Kind: TripleTerm, Value: strings.Join(parts, starTermSep)}, nil
}

// MustTripleTerm is NewTripleTerm for statically known triples; it panics
// on invalid input.
func MustTripleTerm(t Triple) Term {
	tt, err := NewTripleTerm(t)
	if err != nil {
		panic(err)
	}
	return tt
}

// AsTriple decodes the quoted triple; ok is false for non-TripleTerm terms.
func (t Term) AsTriple() (Triple, bool) {
	if t.Kind != TripleTerm {
		return Triple{}, false
	}
	parts := strings.Split(t.Value, starTermSep)
	if len(parts) != 3 {
		return Triple{}, false
	}
	var out [3]Term
	for i, p := range parts {
		fields := strings.Split(p, starFieldSep)
		if len(fields) != 4 || len(fields[0]) != 1 {
			return Triple{}, false
		}
		out[i] = Term{
			Kind:     Kind(fields[0][0] - '0'),
			Value:    fields[1],
			Datatype: fields[2],
			Lang:     fields[3],
		}
	}
	return Triple{S: out[0], P: out[1], O: out[2]}, true
}
