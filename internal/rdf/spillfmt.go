package rdf

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
)

// This file holds the low-level on-disk encoding shared by the spill files
// (DESIGN.md §10): CRC-framed blocks, varint primitives, the corruption
// error that quarantines a bad file, and the small LRU that bounds how much
// of a spilled structure is resident at once.
//
// Every spill file is a sequence of frames:
//
//	[u32le payload length][payload][u32le CRC-32 (IEEE) of payload]
//
// A frame is the unit of both paged reads and integrity: a reader never
// hands out bytes whose checksum it has not verified, so a flipped bit on
// disk surfaces as ErrSpillCorrupt — loudly — instead of as wrong data.

const frameOverhead = 8 // 4-byte length prefix + 4-byte CRC suffix

// ErrSpillCorrupt is the sentinel wrapped by every CRC/format failure on a
// spill file. Callers match it with errors.Is.
var ErrSpillCorrupt = errors.New("spill data corrupt")

// CorruptSpillError reports a spill file that failed its integrity check.
// The file is quarantined (renamed aside) by the loader so the same bytes
// are never trusted twice.
type CorruptSpillError struct {
	File   string // path of the corrupt file
	Offset int64  // frame offset at which the check failed
	Detail string
}

func (e *CorruptSpillError) Error() string {
	return fmt.Sprintf("rdf: spill file quarantined: %s: frame at byte %d: %s", e.File, e.Offset, e.Detail)
}

func (e *CorruptSpillError) Unwrap() error { return ErrSpillCorrupt }

// quarantineFile renames a corrupt spill file aside (best effort) so a
// retry cannot silently re-read the same bad bytes, and returns the error
// that loaders propagate.
func quarantineFile(path string, off int64, detail string) error {
	os.Rename(path, path+".quarantined")
	return &CorruptSpillError{File: path, Offset: off, Detail: detail}
}

// appendFrame wraps payload in a length+CRC frame and appends it to dst.
func appendFrame(dst, payload []byte) []byte {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	dst = append(dst, hdr[:]...)
	dst = append(dst, payload...)
	binary.LittleEndian.PutUint32(hdr[:], crc32.ChecksumIEEE(payload))
	return append(dst, hdr[:]...)
}

// readFrameAt reads and verifies the frame starting at off in f, returning
// its payload and the offset of the next frame. maxPayload bounds the length
// prefix so a corrupt header cannot drive a huge allocation.
func readFrameAt(f *os.File, off int64, maxPayload int) (payload []byte, next int64, err error) {
	var hdr [4]byte
	if _, err := f.ReadAt(hdr[:], off); err != nil {
		return nil, 0, &CorruptSpillError{File: f.Name(), Offset: off, Detail: "short frame header: " + err.Error()}
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if int(n) > maxPayload {
		return nil, 0, &CorruptSpillError{File: f.Name(), Offset: off,
			Detail: fmt.Sprintf("frame length %d exceeds limit %d", n, maxPayload)}
	}
	buf := make([]byte, int(n)+4)
	if _, err := f.ReadAt(buf, off+4); err != nil {
		return nil, 0, &CorruptSpillError{File: f.Name(), Offset: off, Detail: "short frame body: " + err.Error()}
	}
	payload, sum := buf[:n], binary.LittleEndian.Uint32(buf[n:])
	if got := crc32.ChecksumIEEE(payload); got != sum {
		return nil, 0, &CorruptSpillError{File: f.Name(), Offset: off,
			Detail: fmt.Sprintf("crc mismatch: stored %08x, computed %08x", sum, got)}
	}
	return payload, off + 4 + int64(n) + 4, nil
}

// uvarint helpers over byte slices (append-style write, cursor-style read).

func appendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

func readUvarint(buf []byte, pos int) (uint64, int, error) {
	v, n := binary.Uvarint(buf[pos:])
	if n <= 0 {
		return 0, 0, fmt.Errorf("truncated varint at %d", pos)
	}
	return v, pos + n, nil
}

// lruCache is a tiny int-keyed LRU used for decoded spill frames (term
// blocks, posting segments, triple pages). It is NOT goroutine-safe; owners
// guard it with their own mutex.
type lruCache[V any] struct {
	cap     int
	entries map[int]*lruEntry[V]
	head    *lruEntry[V] // most recent
	tail    *lruEntry[V] // least recent
}

type lruEntry[V any] struct {
	key        int
	val        V
	prev, next *lruEntry[V]
}

func newLRU[V any](capacity int) *lruCache[V] {
	if capacity < 1 {
		capacity = 1
	}
	return &lruCache[V]{cap: capacity, entries: make(map[int]*lruEntry[V], capacity)}
}

func (c *lruCache[V]) get(k int) (V, bool) {
	e, ok := c.entries[k]
	if !ok {
		var zero V
		return zero, false
	}
	c.touch(e)
	return e.val, true
}

func (c *lruCache[V]) put(k int, v V) {
	if e, ok := c.entries[k]; ok {
		e.val = v
		c.touch(e)
		return
	}
	e := &lruEntry[V]{key: k, val: v}
	c.entries[k] = e
	c.pushFront(e)
	if len(c.entries) > c.cap {
		evict := c.tail
		c.unlink(evict)
		delete(c.entries, evict.key)
	}
}

func (c *lruCache[V]) touch(e *lruEntry[V]) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

func (c *lruCache[V]) pushFront(e *lruEntry[V]) {
	e.prev, e.next = nil, c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *lruCache[V]) unlink(e *lruEntry[V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}
