package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/s3pg/s3pg/internal/obs"
)

// ErrBreakerOpen is returned by guarded commits while the filesystem circuit
// breaker is open: the storage layer has failed repeatedly and further
// attempts are shed instead of queued behind doomed retries.
var ErrBreakerOpen = errors.New("jobs: commit circuit breaker open")

var (
	cBreakerTrips = obs.Default.Counter("jobs.breaker.trips")
	cBreakerShed  = obs.Default.Counter("jobs.breaker.shed")
	gBreakerState = obs.Default.Gauge("jobs.breaker.open") // 0 closed, 1 open/half-open
)

// breakerState is the classic three-state machine.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// Breaker is a circuit breaker guarding filesystem commits. Each commit
// already retries transient faults with backoff (faultio.Retry); the breaker
// sits around those retried operations and counts *exhausted* operations —
// when Threshold consecutive commits fail, the breaker opens and every
// further commit fails fast with ErrBreakerOpen until Cooldown has elapsed,
// at which point a single trial commit is admitted (half-open): its success
// closes the breaker, its failure re-opens it for another cooldown.
//
// The point is admission control, not durability: while the breaker is open
// the server reports not-ready and sheds new work, instead of stacking every
// worker behind a storage layer that is failing anyway.
type Breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	mu       sync.Mutex
	state    breakerState
	failures int
	openedAt time.Time
	trial    bool // a half-open trial is in flight
}

// NewBreaker returns a closed breaker that opens after threshold consecutive
// failures and re-probes after cooldown. threshold <= 0 means 5; cooldown
// <= 0 means 5s.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold <= 0 {
		threshold = 5
	}
	if cooldown <= 0 {
		cooldown = 5 * time.Second
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// Allow reports whether a commit may proceed: nil when the breaker is closed
// or a half-open trial slot is free, ErrBreakerOpen otherwise.
func (b *Breaker) Allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return nil
	case breakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			cBreakerShed.Inc()
			return ErrBreakerOpen
		}
		b.state = breakerHalfOpen
		b.trial = true
		return nil
	default: // half-open
		if b.trial {
			cBreakerShed.Inc()
			return fmt.Errorf("%w (half-open trial in flight)", ErrBreakerOpen)
		}
		b.trial = true
		return nil
	}
}

// Record feeds the outcome of an admitted commit back into the breaker.
// Context cancellations are not storage failures and must not be recorded —
// including a drain's cause-carrying cancellation (ErrDraining), which
// faultio.Retry surfaces instead of context.Canceled.
func (b *Breaker) Record(err error) {
	if err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) || errors.Is(err, ErrDraining)) {
		b.mu.Lock()
		b.trial = false // a cancelled trial neither closes nor re-opens
		b.mu.Unlock()
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if err == nil {
		b.state = breakerClosed
		b.failures = 0
		b.trial = false
		gBreakerState.Set(0)
		return
	}
	b.trial = false
	b.failures++
	if b.state == breakerHalfOpen || b.failures >= b.threshold {
		if b.state != breakerOpen {
			cBreakerTrips.Inc()
		}
		b.state = breakerOpen
		b.openedAt = b.now()
		gBreakerState.Set(1)
	}
}

// CooldownRemaining returns how long an open breaker will keep shedding
// before it admits its half-open trial commit — the honest Retry-After hint
// for a 503 caused by ErrBreakerOpen. Zero while closed or half-open.
func (b *Breaker) CooldownRemaining() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != breakerOpen {
		return 0
	}
	rem := b.cooldown - b.now().Sub(b.openedAt)
	if rem < 0 {
		rem = 0
	}
	return rem
}

// State returns "closed", "open", or "half-open" for /readyz and /metrics.
func (b *Breaker) State() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state.String()
}
