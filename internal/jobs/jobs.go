// Package jobs turns the one-shot RDF→PG transformation pipeline into a
// long-running job service: transformation requests are accepted into a
// bounded queue with admission control, persisted to a spool directory
// before they are acknowledged, and executed by a worker pool that reuses
// the chunked checkpoint/resume machinery of the CLI (core.SnapshotState +
// internal/ckpt). Every accepted job therefore either completes or survives
// a crash, a graceful drain, or a restart, and resumes to the byte-identical
// outputs an uninterrupted run would have produced (Prop. 4.3 monotonicity;
// see DESIGN.md §4d and §6).
//
// Failure model:
//
//   - Per-job panic isolation: a panic inside one transformation marks that
//     job failed (with the stack) and leaves the worker pool serving.
//   - Deadline propagation: a per-job timeout bounds each run via context;
//     drain cancellation is distinguished from deadline expiry by cause.
//   - Commit circuit breaker: all spool writes go through atomic commits
//     with faultio.Retry backoff; when commits keep failing, the Breaker
//     opens, new work is shed, and readiness reports not-ready.
//   - Durable spool: a job's acknowledgment (manifest commit) happens before
//     Submit returns, so an accepted job is never lost; the manifest and
//     checkpoint are the recovery record a restart resumes from.
package jobs

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// State is a job's lifecycle position.
type State string

const (
	// StateQueued: accepted and durable, waiting for a worker (also the
	// state a drained or requeued job returns to).
	StateQueued State = "queued"
	// StateRunning: a worker is transforming it.
	StateRunning State = "running"
	// StateDone: outputs are committed in the job's spool directory.
	StateDone State = "done"
	// StateFailed: the run ended with an error (recorded on the job).
	StateFailed State = "failed"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool { return s == StateDone || s == StateFailed }

// Lifecycle phases of a job timeline, in the order a clean run visits them.
// They mirror the paper's Table 4 phase breakdown at per-job granularity:
// spool (input persistence), queued (admission / every requeue), running
// (worker pickup), checkpoint (chunk-boundary saves, coalesced), commit
// (output files committed), then a terminal done or failed.
const (
	PhaseSpool      = "spool"
	PhaseQueued     = "queued"
	PhaseRunning    = "running"
	PhaseCheckpoint = "checkpoint"
	PhaseCommit     = "commit"
	PhaseDone       = "done"
	PhaseFailed     = "failed"
)

// PhaseEvent is one entry of a job's lifecycle timeline. Consecutive
// checkpoint events are coalesced in place (At advances, Count accumulates)
// so a million-chunk job keeps a bounded timeline. Timestamps are
// non-decreasing along the timeline, across restarts included, because the
// timeline is persisted in the manifest and only ever appended to.
type PhaseEvent struct {
	Phase string    `json:"phase"`
	At    time.Time `json:"at"`
	// Count is the number of coalesced occurrences (checkpoint events only;
	// 0 means 1).
	Count int `json:"count,omitempty"`
	// Note qualifies a transition: "recovered" on a restart-requeue, "drain"
	// or "retry" on a live requeue.
	Note string `json:"note,omitempty"`
}

// Spec is the client-provided description of one transformation request.
type Spec struct {
	// Mode is "parsimonious" (default when empty) or "nonparsimonious".
	Mode string `json:"mode,omitempty"`
	// Lenient enables skip-and-degrade handling of dirty input.
	Lenient bool `json:"lenient,omitempty"`
	// Timeout bounds the job's total running time (0 = no limit). Time
	// spent queued does not count; the clock restarts on resume.
	Timeout time.Duration `json:"timeout,omitempty"`
}

// Job is the durable record of one accepted request — the manifest persisted
// at <spool>/<id>/job.json. Progress fields are updated at chunk boundaries.
type Job struct {
	ID string `json:"id"`
	Spec
	State State  `json:"state"`
	Error string `json:"error,omitempty"`

	Accepted time.Time `json:"accepted"`
	Started  time.Time `json:"started,omitempty"`
	Finished time.Time `json:"finished,omitempty"`

	// Statements/Skipped are input-side progress tallies; Nodes/Edges and
	// Degraded describe the emitted property graph once done.
	Statements int64 `json:"statements,omitempty"`
	Skipped    int64 `json:"skipped,omitempty"`
	Nodes      int64 `json:"nodes,omitempty"`
	Edges      int64 `json:"edges,omitempty"`
	Degraded   int64 `json:"degraded,omitempty"`

	// Attempts counts worker pickups; Resumes counts checkpoint resumes
	// (after a drain, crash, or requeued commit failure).
	Attempts int `json:"attempts,omitempty"`
	Resumes  int `json:"resumes,omitempty"`

	// Outputs lists the committed result files (relative to the job's spool
	// directory) once the job is done.
	Outputs []string `json:"outputs,omitempty"`

	// Timeline is the job's lifecycle trace (see PhaseEvent). It is part of
	// the manifest, so it survives restarts and GET /jobs/{id} can always
	// show where a job spent its time.
	Timeline []PhaseEvent `json:"timeline,omitempty"`

	// enqueuedAt is the in-memory timestamp of the last enqueue, feeding the
	// queue-wait histogram at pickup. Not persisted: after a restart the wait
	// is measured from recovery, not from the original acceptance.
	enqueuedAt time.Time
}

// Spool-relative file names of a job directory.
const (
	manifestFile = "job.json"
	dataFile     = "data.nt"
	shapesFile   = "shapes.ttl"
	ckptFile     = "run.ckpt"
	nodesFile    = "nodes.csv"
	edgesFile    = "edges.csv"
	schemaFile   = "schema.ddl"
)

// OutputFiles is the fixed set of result files a finished job exposes.
var OutputFiles = []string{nodesFile, edgesFile, schemaFile}

// newJobID returns a queue-ordered, collision-resistant job id: a sequence
// prefix for human-readable ordering plus random bytes so ids stay unique
// across daemon restarts sharing one spool.
func newJobID(seq int64) (string, error) {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("jobs: id entropy: %w", err)
	}
	return fmt.Sprintf("j%06d-%s", seq, hex.EncodeToString(b[:])), nil
}

// loadManifest reads a job manifest from dir. A missing or torn manifest
// means the job was never acknowledged: Submit commits the manifest before
// returning, so such a directory is garbage, not a lost job.
func loadManifest(dir string) (*Job, error) {
	raw, err := os.ReadFile(filepath.Join(dir, manifestFile))
	if err != nil {
		return nil, err
	}
	j := &Job{}
	if err := json.Unmarshal(raw, j); err != nil {
		return nil, fmt.Errorf("jobs: manifest %s: %w", dir, err)
	}
	return j, nil
}
