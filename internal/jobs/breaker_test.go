package jobs

import (
	"context"
	"errors"
	"testing"
	"time"
)

// fakeClock lets breaker tests step through the cooldown deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestBreaker(threshold int, cooldown time.Duration) (*Breaker, *fakeClock) {
	b := NewBreaker(threshold, cooldown)
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b.now = clk.now
	return b, clk
}

var errStorage = errors.New("disk on fire")

func TestBreakerTripsAfterThreshold(t *testing.T) {
	b, _ := newTestBreaker(3, time.Minute)
	for i := 0; i < 2; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("closed breaker refused commit %d: %v", i, err)
		}
		b.Record(errStorage)
		if got := b.State(); got != "closed" {
			t.Fatalf("opened after %d failures (threshold 3): %s", i+1, got)
		}
	}
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Record(errStorage) // third consecutive failure
	if got := b.State(); got != "open" {
		t.Fatalf("state after threshold failures: %s", got)
	}
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open breaker admitted a commit: %v", err)
	}
}

func TestBreakerSuccessResetsFailureCount(t *testing.T) {
	b, _ := newTestBreaker(3, time.Minute)
	for i := 0; i < 10; i++ {
		if err := b.Allow(); err != nil {
			t.Fatal(err)
		}
		// Alternating failure/success never reaches 3 consecutive failures.
		if i%2 == 0 {
			b.Record(errStorage)
		} else {
			b.Record(nil)
		}
	}
	if got := b.State(); got != "closed" {
		t.Fatalf("non-consecutive failures tripped the breaker: %s", got)
	}
}

func TestBreakerHalfOpenRecovery(t *testing.T) {
	b, clk := newTestBreaker(1, time.Minute)
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Record(errStorage)
	if got := b.State(); got != "open" {
		t.Fatalf("threshold-1 breaker not open after a failure: %s", got)
	}

	// Before the cooldown: shed.
	clk.advance(30 * time.Second)
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("pre-cooldown Allow: %v", err)
	}

	// After the cooldown: exactly one trial slot.
	clk.advance(31 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("post-cooldown trial refused: %v", err)
	}
	if got := b.State(); got != "half-open" {
		t.Fatalf("state during trial: %s", got)
	}
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("second concurrent trial admitted: %v", err)
	}

	// Trial success closes the breaker.
	b.Record(nil)
	if got := b.State(); got != "closed" {
		t.Fatalf("state after successful trial: %s", got)
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("closed breaker refused commit: %v", err)
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	b, clk := newTestBreaker(1, time.Minute)
	_ = b.Allow()
	b.Record(errStorage)
	clk.advance(2 * time.Minute)
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Record(errStorage) // trial fails → re-open for a fresh cooldown
	if got := b.State(); got != "open" {
		t.Fatalf("state after failed trial: %s", got)
	}
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("re-opened breaker admitted a commit: %v", err)
	}
	// The cooldown restarted at the failed trial.
	clk.advance(61 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("second trial after fresh cooldown refused: %v", err)
	}
}

func TestBreakerIgnoresDrainCause(t *testing.T) {
	b, _ := newTestBreaker(1, time.Minute)
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	// A commit abandoned because the manager is draining (the cause that
	// faultio.Retry now surfaces instead of context.Canceled) is not a
	// storage failure: must not trip.
	b.Record(ErrDraining)
	if got := b.State(); got != "closed" {
		t.Fatalf("ErrDraining tripped the breaker: %s", got)
	}
}

func TestBreakerCooldownRemaining(t *testing.T) {
	b, clk := newTestBreaker(1, time.Minute)
	if got := b.CooldownRemaining(); got != 0 {
		t.Fatalf("closed breaker reports cooldown %v", got)
	}
	_ = b.Allow()
	b.Record(errStorage)
	if got := b.CooldownRemaining(); got != time.Minute {
		t.Fatalf("freshly opened breaker: %v, want 1m", got)
	}
	clk.advance(40 * time.Second)
	if got := b.CooldownRemaining(); got != 20*time.Second {
		t.Fatalf("mid-cooldown: %v, want 20s", got)
	}
	clk.advance(2 * time.Minute)
	if got := b.CooldownRemaining(); got != 0 {
		t.Fatalf("past cooldown: %v, want 0", got)
	}
	if err := b.Allow(); err != nil { // half-open trial
		t.Fatal(err)
	}
	if got := b.CooldownRemaining(); got != 0 {
		t.Fatalf("half-open breaker reports cooldown %v", got)
	}
}

func TestBreakerIgnoresContextErrors(t *testing.T) {
	b, clk := newTestBreaker(1, time.Minute)
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	// A canceled commit is not a storage failure: must not trip.
	b.Record(context.Canceled)
	if got := b.State(); got != "closed" {
		t.Fatalf("context.Canceled tripped the breaker: %s", got)
	}
	_ = b.Allow()
	b.Record(context.DeadlineExceeded)
	if got := b.State(); got != "closed" {
		t.Fatalf("DeadlineExceeded tripped the breaker: %s", got)
	}

	// And a canceled half-open trial releases the slot without closing.
	_ = b.Allow()
	b.Record(errStorage)
	clk.advance(2 * time.Minute)
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Record(context.Canceled)
	if got := b.State(); got != "half-open" {
		t.Fatalf("canceled trial changed state: %s", got)
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("trial slot not released after canceled trial: %v", err)
	}
}
