package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"github.com/s3pg/s3pg/internal/ckpt"
	"github.com/s3pg/s3pg/internal/core"
	"github.com/s3pg/s3pg/internal/faultio"
	"github.com/s3pg/s3pg/internal/obs"
	"github.com/s3pg/s3pg/internal/pgschema"
	"github.com/s3pg/s3pg/internal/rdf"
	"github.com/s3pg/s3pg/internal/rio"
	"github.com/s3pg/s3pg/internal/shacl"
)

// Admission-control and lifecycle errors. The HTTP layer maps these to
// status codes (429 for a full queue, 503 for the rest).
var (
	ErrQueueFull   = errors.New("jobs: queue full")
	ErrMemPressure = errors.New("jobs: memory watermark exceeded")
	ErrDraining    = errors.New("jobs: draining, not accepting work")
	ErrUnknownJob  = errors.New("jobs: unknown job")
	ErrInvalid     = errors.New("jobs: invalid request")
)

// errRequeue is the internal signal that a run ended by putting the job back
// on the queue (drain or retryable commit failure), not by finishing it.
var errRequeue = errors.New("jobs: requeued")

// Observability instruments (obs.Default registry).
var (
	cAccepted     = obs.Default.Counter("jobs.accepted")
	cRejectedFull = obs.Default.Counter("jobs.rejected.queue_full")
	cRejectedMem  = obs.Default.Counter("jobs.rejected.mem")
	cRejectedDrn  = obs.Default.Counter("jobs.rejected.draining")
	cCompleted    = obs.Default.Counter("jobs.completed")
	cFailed       = obs.Default.Counter("jobs.failed")
	cPanics       = obs.Default.Counter("jobs.panics")
	cRequeued     = obs.Default.Counter("jobs.requeued")
	cResumedCkpt  = obs.Default.Counter("jobs.resumed_from_checkpoint")
	cRecovered    = obs.Default.Counter("jobs.recovered_on_open")
	cCommitRetry  = obs.Default.Counter("jobs.commit.retries")
	gQueued       = obs.Default.Gauge("jobs.queued")
	gRunning      = obs.Default.Gauge("jobs.running")
	// gMemPressure mirrors the admission hysteresis latch: 1 from the
	// moment the heap crosses MaxMemMB until it falls under MemLowMB.
	gMemPressure = obs.Default.Gauge("jobs.mem.pressure")

	// Latency distributions (seconds): time spent waiting in the queue
	// before a worker pickup, whole-attempt run time, and per-checkpoint
	// commit time. Exposed as s3pgd_job_*_seconds in Prometheus format.
	hQueueWait = obs.Default.Histogram("job.queue_wait.seconds")
	hRunTime   = obs.Default.Histogram("job.run.seconds")
	hCkptTime  = obs.Default.Histogram("job.checkpoint.seconds")
)

// Config parameterizes a Manager. The zero value of every field resolves to
// a usable default except Dir, which is required.
type Config struct {
	// Dir is the spool directory: one subdirectory per job holding its
	// manifest, inputs, checkpoint, and outputs.
	Dir string
	// QueueDepth bounds the number of queued (accepted, not yet running)
	// jobs; further submissions are rejected with ErrQueueFull. Default 64.
	QueueDepth int
	// Workers is the worker-pool size. Default 2.
	Workers int
	// JobWorkers is the per-job transform parallelism handed to
	// core.ApplyParallel. Default 1.
	JobWorkers int
	// ChunkSize is the statements-per-chunk granularity of checkpointing.
	// Resume byte-identity is guaranteed against runs with the same chunk
	// size (see DESIGN.md §4d), so restarts must reuse it. Default 50000.
	ChunkSize int
	// MaxMemMB is the soft high heap watermark: once exceeded, submissions
	// are rejected with ErrMemPressure and readiness reports not-ready until
	// the heap falls back under the low watermark. 0 = off.
	MaxMemMB int
	// MemLowMB is the low watermark of the admission hysteresis band: the
	// pressure latch set at MaxMemMB clears only once the heap drops under
	// it, so admission does not flap around a single threshold while the
	// heap hovers there. 0 defaults to 80% of MaxMemMB.
	MemLowMB int
	// MaxAttempts bounds worker pickups per job before a retryable commit
	// failure becomes permanent (drain requeues do not consume attempts).
	// Default 5.
	MaxAttempts int
	// FS is the commit filesystem (fault-injection seam). Default ckpt.OSFS.
	FS ckpt.FS
	// Retry is the backoff policy around every atomic commit.
	Retry faultio.RetryPolicy
	// BreakerThreshold/BreakerCooldown parameterize the commit circuit
	// breaker (see Breaker). Defaults 5 and 5s.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Log receives structured operational log records. Nil discards them.
	Log *obs.Logger
	// Trace, when non-nil, receives one JSONL record per job lifecycle
	// phase transition (the -trace-file sink).
	Trace *obs.JSONL
	// BeforeChunk, when non-nil, runs before each chunk of each job — a
	// test seam for panic isolation and scheduling tests.
	BeforeChunk func(jobID string, chunk int)
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.JobWorkers <= 0 {
		c.JobWorkers = 1
	}
	if c.ChunkSize <= 0 {
		c.ChunkSize = 50000
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 5
	}
	if c.FS == nil {
		c.FS = ckpt.OSFS
	}
	if c.MemLowMB <= 0 || c.MemLowMB > c.MaxMemMB {
		c.MemLowMB = c.MaxMemMB * 4 / 5
	}
	return c
}

// Manager owns the spool, the queue, and the worker pool.
type Manager struct {
	cfg     Config
	breaker *Breaker

	// ctx is the root of every job context; Drain cancels it with cause
	// ErrDraining so workers can tell a drain from a deadline.
	ctx    context.Context
	cancel context.CancelCauseFunc

	mu        sync.Mutex
	cond      *sync.Cond
	jobs      map[string]*Job
	pending   []string
	admitting int // submissions past admission control, not yet enqueued
	running   int
	draining  bool
	seq       int64
	// memLatched is the admission hysteresis latch: set when the heap
	// crosses MaxMemMB, cleared only once it drops under MemLowMB.
	memLatched bool

	// readHeap samples the live heap; overridable in tests. Nil means
	// runtime.ReadMemStats HeapAlloc.
	readHeap func() uint64

	wg sync.WaitGroup
}

// Open initializes the spool directory, recovers every incomplete job left
// by a previous process (queued jobs re-enter the queue; jobs that were
// running when the process died are requeued and resume from their last
// checkpoint), and starts the worker pool.
func Open(cfg Config) (*Manager, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, errors.New("jobs: Config.Dir is required")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	m := &Manager{
		cfg:     cfg,
		breaker: NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown),
		jobs:    make(map[string]*Job),
	}
	m.cond = sync.NewCond(&m.mu)
	m.ctx, m.cancel = context.WithCancelCause(context.Background())

	entries, err := os.ReadDir(cfg.Dir)
	if err != nil {
		return nil, err
	}
	var recovered []*Job
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(cfg.Dir, e.Name())
		m.sweepTempFiles(dir)
		j, err := loadManifest(dir)
		if err != nil {
			// Never-acknowledged (or foreign) directory: not a lost job.
			cfg.Log.Warn("spool_entry_skipped", "entry", e.Name(), "error", err)
			continue
		}
		if j.ID != e.Name() {
			cfg.Log.Warn("spool_manifest_mismatch", "entry", e.Name(), "manifest_id", j.ID)
			continue
		}
		m.jobs[j.ID] = j
		if j.State == StateRunning {
			// The previous process died mid-run; the checkpoint (if any) is
			// the resume point.
			j.State = StateQueued
		}
		if j.State == StateQueued {
			recovered = append(recovered, j)
		}
	}
	// Oldest first, so recovery preserves admission order.
	sort.Slice(recovered, func(i, k int) bool { return recovered[i].Accepted.Before(recovered[k].Accepted) })
	for _, j := range recovered {
		j.enqueuedAt = time.Now()
		ev := m.recordPhase(j, PhaseQueued, "recovered")
		m.pending = append(m.pending, j.ID)
		m.persistManifest(j) // records the running→queued transition
		m.trace(j.ID, ev)
		cRecovered.Inc()
	}
	m.seq = int64(len(m.jobs))
	m.updateGauges()
	if n := len(recovered); n > 0 {
		cfg.Log.Info("jobs_recovered", "count", n, "spool", cfg.Dir)
	}
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m, nil
}

// recordPhase appends a phase event to a job's timeline and returns it.
// Callers must hold m.mu (or own the job exclusively, as Submit and Open
// do). Consecutive checkpoint events coalesce in place so timelines stay
// bounded on long runs.
func (m *Manager) recordPhase(j *Job, phase, note string) PhaseEvent {
	now := time.Now().UTC()
	if phase == PhaseCheckpoint && len(j.Timeline) > 0 {
		last := &j.Timeline[len(j.Timeline)-1]
		if last.Phase == PhaseCheckpoint {
			last.At = now
			last.Count++
			return *last
		}
	}
	ev := PhaseEvent{Phase: phase, At: now, Note: note}
	if phase == PhaseCheckpoint {
		ev.Count = 1
	}
	j.Timeline = append(j.Timeline, ev)
	return ev
}

// snapshotJob deep-copies a job record (timeline and outputs included) so
// the copy can be read or encoded outside m.mu while workers keep mutating
// the original — checkpoint coalescing edits timeline entries in place, so
// a shared backing array would be a data race. Callers must hold m.mu.
func snapshotJob(j *Job) Job {
	c := *j
	if len(j.Timeline) > 0 {
		c.Timeline = append([]PhaseEvent(nil), j.Timeline...)
	}
	if len(j.Outputs) > 0 {
		c.Outputs = append([]string(nil), j.Outputs...)
	}
	return c
}

// trace emits one timeline event to the configured JSONL sink.
func (m *Manager) trace(id string, ev PhaseEvent) {
	if m.cfg.Trace == nil {
		return
	}
	if err := m.cfg.Trace.Write(struct {
		JobID string    `json:"job_id"`
		Phase string    `json:"phase"`
		At    time.Time `json:"at"`
		Count int       `json:"count,omitempty"`
		Note  string    `json:"note,omitempty"`
	}{JobID: id, Phase: ev.Phase, At: ev.At, Count: ev.Count, Note: ev.Note}); err != nil {
		m.cfg.Log.Warn("trace_write_failed", "job_id", id, "error", err)
	}
}

// sweepTempFiles removes abandoned atomic-commit temp files from a job
// directory. At Open time no commit is in flight, so every *.tmp-* entry is
// litter from a process that died mid-commit (the committed files themselves
// are rename-complete and untouched).
func (m *Manager) sweepTempFiles(dir string) {
	matches, err := filepath.Glob(filepath.Join(dir, "*.tmp-*"))
	if err != nil {
		return
	}
	for _, p := range matches {
		if err := os.Remove(p); err != nil {
			m.cfg.Log.Warn("temp_sweep_failed", "path", p, "error", err)
		} else {
			m.cfg.Log.Info("temp_file_removed", "path", p)
		}
	}
}

// jobDir returns the spool directory of a job.
func (m *Manager) jobDir(id string) string { return filepath.Join(m.cfg.Dir, id) }

// updateGauges refreshes the queue-depth and running gauges. Callers hold mu.
func (m *Manager) updateGauges() {
	gQueued.Set(int64(len(m.pending)))
	gRunning.Set(int64(m.running))
}

// memPressure reports the admission hysteresis latch: it sets when the heap
// crosses the MaxMemMB high watermark and clears only once the heap falls
// back under MemLowMB, so admission decisions do not flap while the heap
// hovers around a single threshold. The jobs.mem.pressure gauge mirrors the
// latch on /metrics.
func (m *Manager) memPressure() bool {
	if m.cfg.MaxMemMB <= 0 {
		return false
	}
	heap := m.heapBytes()
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.memLatched {
		if heap <= uint64(m.cfg.MemLowMB)<<20 {
			m.memLatched = false
			gMemPressure.Set(0)
		}
	} else if heap > uint64(m.cfg.MaxMemMB)<<20 {
		m.memLatched = true
		gMemPressure.Set(1)
	}
	return m.memLatched
}

func (m *Manager) heapBytes() uint64 {
	if m.readHeap != nil {
		return m.readHeap()
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// Ready reports whether the manager should be advertised as ready for new
// work: nil, or the admission-control error a submission would hit.
func (m *Manager) Ready() error {
	m.mu.Lock()
	draining := m.draining
	m.mu.Unlock()
	if draining {
		return ErrDraining
	}
	if m.breaker.State() != "closed" {
		return ErrBreakerOpen
	}
	if m.memPressure() {
		return ErrMemPressure
	}
	return nil
}

// RetryAfterHint returns how long a shed client should wait before retrying:
// the breaker's remaining cooldown when it is open (retrying sooner is
// guaranteed to be shed again), zero otherwise so callers fall back to their
// static hint.
func (m *Manager) RetryAfterHint() time.Duration {
	return m.breaker.CooldownRemaining()
}

// Stats is a point-in-time queue summary (served alongside /metrics).
type Stats struct {
	Queued   int    `json:"queued"`
	Running  int    `json:"running"`
	Done     int    `json:"done"`
	Failed   int    `json:"failed"`
	Draining bool   `json:"draining"`
	Breaker  string `json:"breaker"`
}

// Stats returns the current queue summary.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Stats{Queued: len(m.pending), Running: m.running, Draining: m.draining, Breaker: m.breaker.State()}
	for _, j := range m.jobs {
		switch j.State {
		case StateDone:
			s.Done++
		case StateFailed:
			s.Failed++
		}
	}
	return s
}

// Submit runs admission control, persists the request durably in the spool,
// and enqueues it. When Submit returns nil, the job is accepted: it will
// either complete or remain resumable across restarts. The returned Job is a
// snapshot.
func (m *Manager) Submit(spec Spec, shapes, data string) (Job, error) {
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		cRejectedDrn.Inc()
		return Job{}, ErrDraining
	}
	if len(m.pending)+m.admitting >= m.cfg.QueueDepth {
		m.mu.Unlock()
		cRejectedFull.Inc()
		return Job{}, ErrQueueFull
	}
	m.admitting++
	m.seq++
	seq := m.seq
	m.mu.Unlock()
	admitted := false
	defer func() {
		if !admitted {
			m.mu.Lock()
			m.admitting--
			m.mu.Unlock()
		}
	}()

	if m.memPressure() {
		cRejectedMem.Inc()
		return Job{}, ErrMemPressure
	}

	// Reject obviously bad requests at the door: unknown mode, unparsable
	// shapes. (Data errors surface at run time, per the lenient policy.)
	if spec.Mode == "" {
		spec.Mode = core.Parsimonious.String()
	}
	if _, err := core.ParseMode(spec.Mode); err != nil {
		return Job{}, fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	if spec.Timeout < 0 {
		return Job{}, fmt.Errorf("%w: negative timeout", ErrInvalid)
	}
	if g, err := rio.ParseTurtleWith(m.ctx, shapes, rio.Options{}); err != nil {
		return Job{}, fmt.Errorf("%w: shapes: %v", ErrInvalid, err)
	} else if _, err := shacl.FromGraph(g); err != nil {
		return Job{}, fmt.Errorf("%w: shapes: %v", ErrInvalid, err)
	}

	id, err := newJobID(seq)
	if err != nil {
		return Job{}, err
	}
	dir := m.jobDir(id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return Job{}, err
	}
	writeString := func(name, content string) error {
		return m.commit(m.ctx, filepath.Join(dir, name), func(w io.Writer) error {
			_, err := io.WriteString(w, content)
			return err
		})
	}
	if err := writeString(shapesFile, shapes); err != nil {
		return Job{}, err
	}
	if err := writeString(dataFile, data); err != nil {
		return Job{}, err
	}
	now := time.Now()
	j := &Job{ID: id, Spec: spec, State: StateQueued, Accepted: now.UTC(), enqueuedAt: now}
	spoolEv := m.recordPhase(j, PhaseSpool, "")
	queueEv := m.recordPhase(j, PhaseQueued, "")
	// The manifest commit is the acknowledgment point: after it, the job is
	// recoverable from the spool alone — timeline included.
	if err := m.commitManifest(m.ctx, j); err != nil {
		return Job{}, err
	}

	m.mu.Lock()
	m.jobs[id] = j
	m.pending = append(m.pending, id)
	m.admitting--
	admitted = true
	m.updateGauges()
	snap := snapshotJob(j)
	m.mu.Unlock()
	m.cond.Signal()
	cAccepted.Inc()
	m.trace(id, spoolEv)
	m.trace(id, queueEv)
	m.cfg.Log.Info("job_accepted", "job_id", id, "mode", spec.Mode, "lenient", spec.Lenient, "data_bytes", len(data))
	return snap, nil
}

// Get returns a snapshot of a job.
func (m *Manager) Get(id string) (Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Job{}, ErrUnknownJob
	}
	return snapshotJob(j), nil
}

// List returns snapshots of every known job, oldest first.
func (m *Manager) List() []Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		out = append(out, snapshotJob(j))
	}
	sort.Slice(out, func(i, k int) bool {
		if !out[i].Accepted.Equal(out[k].Accepted) {
			return out[i].Accepted.Before(out[k].Accepted)
		}
		return out[i].ID < out[k].ID
	})
	return out
}

// OutputPath resolves one of a finished job's result files, guarding against
// path escapes and unfinished jobs.
func (m *Manager) OutputPath(id, name string) (string, error) {
	ok := false
	for _, f := range OutputFiles {
		if name == f {
			ok = true
		}
	}
	if !ok {
		return "", fmt.Errorf("%w: no such output %q", ErrInvalid, name)
	}
	j, err := m.Get(id)
	if err != nil {
		return "", err
	}
	if j.State != StateDone {
		return "", fmt.Errorf("%w: job %s is %s", ErrInvalid, id, j.State)
	}
	return filepath.Join(m.jobDir(id), name), nil
}

// QuerySource resolves the retained inputs of a finished job for the query
// serving tier: the shapes and data files plus the transformation mode. Only
// done jobs are queryable — their inputs and outputs are committed and
// immutable in the spool.
func (m *Manager) QuerySource(id string) (shapesPath, dataPath, mode string, err error) {
	j, err := m.Get(id)
	if err != nil {
		return "", "", "", err
	}
	if j.State != StateDone {
		return "", "", "", fmt.Errorf("%w: job %s is %s, not queryable", ErrInvalid, id, j.State)
	}
	dir := m.jobDir(id)
	return filepath.Join(dir, shapesFile), filepath.Join(dir, dataFile), j.Mode, nil
}

// Drain stops accepting work, wakes idle workers, cancels running jobs with
// cause ErrDraining (they checkpoint at their next chunk boundary and
// requeue), and waits for the pool to quiesce or ctx to expire. After a
// clean drain every non-terminal job is back in StateQueued with a durable
// manifest, ready for the next process to resume.
func (m *Manager) Drain(ctx context.Context) error {
	m.mu.Lock()
	already := m.draining
	m.draining = true
	m.mu.Unlock()
	if !already {
		m.cfg.Log.Info("draining")
	}
	m.cond.Broadcast()
	m.cancel(ErrDraining)
	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("jobs: drain: %w", context.Cause(ctx))
	}
}

// Close is Drain without a deadline, for tests and defers.
func (m *Manager) Close() error { return m.Drain(context.Background()) }

// commit writes one file atomically through the breaker, the retry policy,
// and the (possibly fault-injecting) commit filesystem.
func (m *Manager) commit(ctx context.Context, path string, fn func(io.Writer) error) error {
	if err := m.breaker.Allow(); err != nil {
		return err
	}
	p := m.cfg.Retry
	inner := p.OnRetry
	p.OnRetry = func(attempt int, err error) {
		cCommitRetry.Inc()
		m.cfg.Log.Warn("commit_retry", "file", filepath.Base(path), "attempt", attempt, "error", err)
		if inner != nil {
			inner(attempt, err)
		}
	}
	err := faultio.Retry(ctx, p, func() error {
		return ckpt.WriteFileAtomicFS(m.cfg.FS, path, 0o644, fn)
	})
	m.breaker.Record(err)
	return err
}

// commitManifest persists a job snapshot as its manifest.
func (m *Manager) commitManifest(ctx context.Context, j *Job) error {
	m.mu.Lock()
	snap := snapshotJob(j)
	m.mu.Unlock()
	return m.commit(ctx, filepath.Join(m.jobDir(snap.ID), manifestFile), func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(snap)
	})
}

// persistManifest is commitManifest with failures logged instead of
// returned: manifest updates along the run are advisory (the checkpoint is
// the recovery record); only the Submit-time commit is load-bearing.
func (m *Manager) persistManifest(j *Job) {
	if err := m.commitManifest(context.Background(), j); err != nil {
		m.cfg.Log.Warn("manifest_update_failed", "job_id", j.ID, "error", err)
	}
}

// worker pops jobs until drain.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		m.mu.Lock()
		for len(m.pending) == 0 && !m.draining {
			m.cond.Wait()
		}
		if m.draining {
			m.mu.Unlock()
			return
		}
		id := m.pending[0]
		m.pending = m.pending[1:]
		j := m.jobs[id]
		j.State = StateRunning
		j.Started = time.Now().UTC()
		j.Attempts++
		if !j.enqueuedAt.IsZero() {
			hQueueWait.ObserveSince(j.enqueuedAt)
		}
		ev := m.recordPhase(j, PhaseRunning, "")
		attempt := j.Attempts
		m.running++
		m.updateGauges()
		m.mu.Unlock()
		m.trace(id, ev)
		m.cfg.Log.Info("job_running", "job_id", id, "attempt", attempt)
		m.persistManifest(j)
		m.runJob(id)
		m.mu.Lock()
		m.running--
		m.updateGauges()
		m.mu.Unlock()
	}
}

// runJob executes one job behind a panic barrier so a transformation bug
// cannot take down the pool.
func (m *Manager) runJob(id string) {
	defer func() {
		if r := recover(); r != nil {
			cPanics.Inc()
			m.cfg.Log.Error("job_panic", "job_id", id, "panic", fmt.Sprint(r))
			m.fail(id, fmt.Errorf("internal panic: %v\n%s", r, debug.Stack()))
		}
	}()
	m.mu.Lock()
	spec := m.jobs[id].Spec
	m.mu.Unlock()
	jctx := m.ctx
	if spec.Timeout > 0 {
		var cancel context.CancelFunc
		jctx, cancel = context.WithTimeout(jctx, spec.Timeout)
		defer cancel()
	}
	err := m.transform(jctx, id, spec)
	switch {
	case err == nil, errors.Is(err, errRequeue):
	case errors.Is(err, context.DeadlineExceeded):
		m.fail(id, fmt.Errorf("deadline exceeded after %v", spec.Timeout))
	case draining(jctx) && (errors.Is(err, context.Canceled) || errors.Is(err, ErrDraining)):
		// The drain canceled the job in a phase with no boundary-requeue
		// path of its own (e.g. mid shapes parse, or a commit retry that
		// burned its budget on the canceled context — faultio.Retry
		// surfaces that as the cancellation cause, ErrDraining). The spool
		// still holds the last checkpoint — or nothing, for a fresh job —
		// so putting it back on the queue is always sound.
		m.requeue(id, true)
	default:
		m.fail(id, err)
	}
}

// draining reports whether ctx was canceled by Drain rather than a deadline.
func draining(ctx context.Context) bool {
	return errors.Is(context.Cause(ctx), ErrDraining)
}

// transform is the chunked pipeline of one job: restore-or-build the
// transformer, stream the spooled input in ChunkSize-statement chunks,
// checkpoint at each boundary, and commit the outputs at EOF. It mirrors the
// CLI's cmdDataCheckpointed, so the same Prop. 4.3 argument applies: a drain
// or crash at any point resumes to byte-identical outputs.
func (m *Manager) transform(ctx context.Context, id string, spec Spec) error {
	dir := m.jobDir(id)
	f, err := os.Open(filepath.Join(dir, dataFile))
	if err != nil {
		return err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return err
	}
	inputSize := st.Size()
	ckptPath := filepath.Join(dir, ckptFile)

	var tr *core.Transformer
	var base struct{ off, lines, stmts, skipped int64 }
	cp, lerr := ckpt.Load(ckptPath)
	switch {
	case errors.Is(lerr, fs.ErrNotExist):
		// Fresh run.
	case lerr != nil:
		return lerr // checkpoints commit atomically; corruption is a real fault
	default:
		if cp.InputSize != inputSize {
			return fmt.Errorf("jobs: %s: spooled input is %d bytes, checkpoint recorded %d", id, inputSize, cp.InputSize)
		}
		tr, err = core.RestoreTransformer(&core.PipelineState{
			Mode: cp.Mode, Lenient: cp.Lenient, SchemaDDL: cp.SchemaDDL,
			NodesCSV: cp.NodesCSV, EdgesCSV: cp.EdgesCSV,
			FallbackRoutes: cp.FallbackRoutes, KVProps: cp.KVProps, Degraded: cp.Degraded,
			Nodes: int(cp.Nodes), Edges: int(cp.Edges),
		})
		if err != nil {
			return err
		}
		if _, err := f.Seek(cp.ByteOffset, io.SeekStart); err != nil {
			return err
		}
		base.off, base.lines = cp.ByteOffset, cp.Lines
		base.stmts, base.skipped = cp.Statements, cp.Skipped
		cResumedCkpt.Inc()
		m.mu.Lock()
		m.jobs[id].Resumes++
		m.mu.Unlock()
		m.cfg.Log.Info("job_resumed", "job_id", id, "byte_offset", cp.ByteOffset, "statements", cp.Statements)
	}
	if tr == nil {
		shapesSrc, err := os.ReadFile(filepath.Join(dir, shapesFile))
		if err != nil {
			return err
		}
		g, err := rio.ParseTurtleWith(ctx, string(shapesSrc), rio.Options{})
		if err != nil {
			return err
		}
		sg, err := shacl.FromGraph(g)
		if err != nil {
			return err
		}
		mode, err := core.ParseMode(spec.Mode)
		if err != nil {
			return err
		}
		tr, err = core.NewTransformer(sg, mode)
		if err != nil {
			return err
		}
		tr.SetLenient(spec.Lenient)
	}

	sc := rio.NewNTriplesScanner(f, rio.Options{Lenient: spec.Lenient, MaxErrors: -1})
	sc.SetPos(base.off, int(base.lines))
	bound := base
	saveCkpt := func(ctx context.Context) error {
		pst, err := tr.SnapshotState()
		if err != nil {
			return err
		}
		c := &ckpt.Checkpoint{
			InputPath: dataFile, InputSize: inputSize,
			ByteOffset: bound.off, Lines: bound.lines,
			Statements: bound.stmts, Skipped: bound.skipped,
			Mode: pst.Mode, Lenient: pst.Lenient, ShapesPath: shapesFile,
			Nodes: int64(pst.Nodes), Edges: int64(pst.Edges),
			KVProps: pst.KVProps, Degraded: pst.Degraded,
			SchemaDDL: pst.SchemaDDL, NodesCSV: pst.NodesCSV, EdgesCSV: pst.EdgesCSV,
			FallbackRoutes: pst.FallbackRoutes,
		}
		start := time.Now()
		if err := m.commit(ctx, ckptPath, c.Encode); err != nil {
			return err
		}
		hCkptTime.ObserveSince(start)
		m.mu.Lock()
		ev := m.recordPhase(m.jobs[id], PhaseCheckpoint, "")
		m.mu.Unlock()
		m.trace(id, ev)
		return nil
	}
	// requeueFromBoundary: the in-memory state at the last clean boundary is
	// checkpointable; save it (using a fresh context — the job context is
	// already canceled during a drain) and put the job back on the queue. A
	// failed save is demoted to the previous on-disk checkpoint: resume just
	// replays more of the input, with identical results.
	requeueFromBoundary := func(clean bool) error {
		if clean {
			if err := saveCkpt(context.Background()); err != nil {
				m.cfg.Log.Warn("drain_checkpoint_failed", "job_id", id, "error", err)
			}
		}
		m.requeue(id, true)
		return errRequeue
	}

	chunkN := 0
	for {
		if err := ctx.Err(); err != nil {
			if draining(ctx) {
				return requeueFromBoundary(true)
			}
			return context.Cause(ctx)
		}
		if hook := m.cfg.BeforeChunk; hook != nil {
			hook(id, chunkN)
		}
		chunk := rdf.NewGraph()
		for chunk.Len() < m.cfg.ChunkSize {
			t, ok, err := sc.Scan()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			chunk.Add(t)
		}
		atEOF := chunk.Len() < m.cfg.ChunkSize
		if chunk.Len() > 0 {
			if err := tr.ApplyParallel(ctx, chunk, m.cfg.JobWorkers, nil); err != nil {
				if draining(ctx) {
					// Mid-Apply state is dirty: resume from the last on-disk
					// checkpoint instead of snapshotting.
					return requeueFromBoundary(false)
				}
				return err
			}
			bound.off, bound.lines = sc.Offset(), int64(sc.Line())
			bound.stmts = base.stmts + sc.Triples()
			bound.skipped = base.skipped + sc.Skipped()
			chunkN++
			m.mu.Lock()
			j := m.jobs[id]
			j.Statements, j.Skipped = bound.stmts, bound.skipped
			m.mu.Unlock()
		}
		if atEOF {
			break
		}
		if err := saveCkpt(ctx); err != nil {
			if draining(ctx) {
				// The drain landed while the save was in flight; the boundary
				// is clean, so take the drain path (fresh-context flush,
				// attempt budget untouched) instead of burning an attempt.
				return requeueFromBoundary(true)
			}
			return m.requeueOrFail(id, err)
		}
	}

	// Commit the outputs. Each file is complete-or-absent; the manifest
	// flips to done only after all three are committed.
	store, schema := tr.Store(), tr.Schema()
	outputs := []struct {
		name  string
		write func(io.Writer) error
	}{
		{nodesFile, func(w io.Writer) error { return store.WriteCSV(w, io.Discard) }},
		{edgesFile, func(w io.Writer) error { return store.WriteCSV(io.Discard, w) }},
		{schemaFile, func(w io.Writer) error {
			_, err := io.WriteString(w, pgschema.WriteDDL(schema))
			return err
		}},
	}
	for _, out := range outputs {
		if err := m.commit(ctx, filepath.Join(dir, out.name), out.write); err != nil {
			if draining(ctx) {
				return requeueFromBoundary(true)
			}
			return m.requeueOrFail(id, err)
		}
	}

	// The checkpoint is consumed; removing it keeps a restart from resuming
	// a finished job. Removal happens before the done-transition: a crash in
	// between just reruns the job from scratch, deterministically.
	if err := os.Remove(ckptPath); err != nil && !errors.Is(err, fs.ErrNotExist) {
		m.cfg.Log.Warn("checkpoint_cleanup_failed", "job_id", id, "error", err)
	}
	m.mu.Lock()
	j := m.jobs[id]
	j.Finished = time.Now().UTC()
	j.Statements, j.Skipped = bound.stmts, bound.skipped
	j.Nodes, j.Edges = int64(store.NumNodes()), int64(store.NumEdges())
	j.Degraded = tr.DegradedCount()
	j.Outputs = append([]string(nil), OutputFiles...)
	commitEv := m.recordPhase(j, PhaseCommit, "")
	runFor := j.Finished.Sub(j.Started)
	done := snapshotJob(j)
	done.State = StateDone
	m.mu.Unlock()
	m.trace(id, commitEv)
	if err := m.commit(ctx, filepath.Join(m.jobDir(id), manifestFile), func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(done)
	}); err != nil {
		// Outputs are committed but the done-marker is not: requeue; the
		// rerun reproduces the same bytes and re-commits the manifest.
		return m.requeueOrFail(id, err)
	}
	m.mu.Lock()
	j.State = StateDone
	doneEv := m.recordPhase(j, PhaseDone, "")
	m.mu.Unlock()
	m.trace(id, doneEv)
	hRunTime.Observe(runFor.Seconds())
	cCompleted.Inc()
	m.cfg.Log.Info("job_done", "job_id", id,
		"statements", bound.stmts, "nodes", store.NumNodes(), "edges", store.NumEdges(),
		"run_seconds", runFor.Seconds())
	// Advisory rewrite so the manifest carries the done event too; the
	// load-bearing done-transition is the commit above.
	m.persistManifest(j)
	return nil
}

// requeue puts a job back on the queue in StateQueued. free drains do not
// consume the attempt budget.
func (m *Manager) requeue(id string, free bool) {
	note := "retry"
	if free {
		note = "drain"
	}
	m.mu.Lock()
	j := m.jobs[id]
	j.State = StateQueued
	j.enqueuedAt = time.Now()
	if free && j.Attempts > 0 {
		j.Attempts--
	}
	ev := m.recordPhase(j, PhaseQueued, note)
	m.pending = append(m.pending, id)
	m.updateGauges()
	m.mu.Unlock()
	cRequeued.Inc()
	m.trace(id, ev)
	m.persistManifest(j)
	m.cond.Signal()
}

// requeueOrFail handles a commit failure: requeue while the attempt budget
// lasts (the breaker cooldown or a cleared fault may let the retry
// succeed), fail permanently after that.
func (m *Manager) requeueOrFail(id string, err error) error {
	m.mu.Lock()
	attempts := m.jobs[id].Attempts
	m.mu.Unlock()
	if attempts >= m.cfg.MaxAttempts {
		return fmt.Errorf("giving up after %d attempts: %w", attempts, err)
	}
	m.cfg.Log.Warn("job_requeued", "job_id", id, "attempt", attempts, "max_attempts", m.cfg.MaxAttempts, "error", err)
	m.requeue(id, false)
	return errRequeue
}

// fail marks a job failed.
func (m *Manager) fail(id string, err error) {
	m.mu.Lock()
	j := m.jobs[id]
	j.State = StateFailed
	j.Error = err.Error()
	j.Finished = time.Now().UTC()
	ev := m.recordPhase(j, PhaseFailed, "")
	var runFor time.Duration
	if !j.Started.IsZero() {
		runFor = j.Finished.Sub(j.Started)
	}
	m.mu.Unlock()
	cFailed.Inc()
	if runFor > 0 {
		hRunTime.Observe(runFor.Seconds())
	}
	m.trace(id, ev)
	m.cfg.Log.Error("job_failed", "job_id", id, "error", err)
	m.persistManifest(j)
}
