package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// timelinePhases extracts the phase sequence of a job's timeline.
func timelinePhases(j Job) []string {
	out := make([]string, len(j.Timeline))
	for i, ev := range j.Timeline {
		out[i] = ev.Phase
	}
	return out
}

func assertMonotone(t *testing.T, j Job) {
	t.Helper()
	for i := 1; i < len(j.Timeline); i++ {
		if j.Timeline[i].At.Before(j.Timeline[i-1].At) {
			t.Fatalf("timeline not monotone at %d: %v", i, timelinePhases(j))
		}
	}
}

func TestTimelineCoversLifecycle(t *testing.T) {
	shapes, data := testDataset()
	m := mustOpen(t, testConfig(t))
	j, err := m.Submit(Spec{}, shapes, data)
	if err != nil {
		t.Fatal(err)
	}
	done := waitTerminal(t, m, j.ID)
	if done.State != StateDone {
		t.Fatalf("job: %s (%s)", done.State, done.Error)
	}
	phases := timelinePhases(done)
	want := []string{PhaseSpool, PhaseQueued, PhaseRunning, PhaseCheckpoint, PhaseCommit, PhaseDone}
	got := strings.Join(phases, ",")
	if got != strings.Join(want, ",") {
		t.Fatalf("timeline %v, want %v", phases, want)
	}
	assertMonotone(t, done)
	// The small test chunk size forces many checkpoints; coalescing must have
	// folded them into the single checkpoint event with an accumulated count.
	for _, ev := range done.Timeline {
		if ev.Phase == PhaseCheckpoint && ev.Count < 2 {
			t.Fatalf("checkpoint event not coalesced: count=%d", ev.Count)
		}
	}
}

func TestTimelineSurvivesManifestRoundTrip(t *testing.T) {
	shapes, data := testDataset()
	m := mustOpen(t, testConfig(t))
	j, err := m.Submit(Spec{}, shapes, data)
	if err != nil {
		t.Fatal(err)
	}
	done := waitTerminal(t, m, j.ID)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen the same spool: the timeline is part of the manifest, so the
	// recovered record must carry the full pre-restart history.
	cfg := testConfig(t)
	cfg.Dir = m.cfg.Dir
	m2 := mustOpen(t, cfg)
	got, err := m2.Get(done.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Timeline) < len(done.Timeline) {
		t.Fatalf("timeline shrank across restart: %v vs %v", timelinePhases(got), timelinePhases(done))
	}
	gp := strings.Join(timelinePhases(got), ",")
	if !strings.HasPrefix(gp, strings.Join(timelinePhases(done), ",")) {
		t.Fatalf("recovered timeline %v does not extend %v", timelinePhases(got), timelinePhases(done))
	}
	assertMonotone(t, got)
}

func TestTimelineRecordsDrainRequeue(t *testing.T) {
	shapes, data := testDataset()
	cfg := testConfig(t)
	cfg.Workers = 1
	started := make(chan string, 16)
	block := make(chan struct{})
	var once bool
	cfg.BeforeChunk = func(id string, chunk int) {
		if chunk == 0 && !once {
			once = true
			started <- id
			<-block
		}
	}
	m := mustOpen(t, cfg)
	j, err := m.Submit(Spec{}, shapes, data)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("job never started")
	}
	// Drain while the job is mid-run: it must requeue (queued event with a
	// drain note) rather than fail.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	close(block)
	if err := m.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	got, err := m.Get(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	assertMonotone(t, got)
	phases := timelinePhases(got)
	sawRunning := false
	for _, p := range phases {
		if p == PhaseRunning {
			sawRunning = true
		}
	}
	if !sawRunning {
		t.Fatalf("timeline %v missing running phase", phases)
	}
	// After a drain the job is either terminal (finished before the cancel
	// landed) or re-queued with the requeue recorded.
	if !got.State.Terminal() {
		last := got.Timeline[len(got.Timeline)-1]
		if last.Phase != PhaseQueued {
			t.Fatalf("non-terminal drained job ends timeline with %q: %v", last.Phase, phases)
		}
		if last.Note == "" {
			t.Fatal("requeue event carries no note")
		}
	}
}

func TestTimelineJSONShape(t *testing.T) {
	shapes, data := testDataset()
	m := mustOpen(t, testConfig(t))
	j, err := m.Submit(Spec{}, shapes, data)
	if err != nil {
		t.Fatal(err)
	}
	done := waitTerminal(t, m, j.ID)
	raw, err := json.Marshal(done)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(raw, []byte(`"timeline"`)) {
		t.Fatalf("job JSON missing timeline: %s", raw)
	}
	var back Job
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Timeline) != len(done.Timeline) {
		t.Fatalf("timeline did not round-trip: %d vs %d", len(back.Timeline), len(done.Timeline))
	}
}
