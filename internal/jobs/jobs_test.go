package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/s3pg/s3pg/internal/ckpt"
	"github.com/s3pg/s3pg/internal/datagen"
	"github.com/s3pg/s3pg/internal/faultio"
	"github.com/s3pg/s3pg/internal/obs"
	"github.com/s3pg/s3pg/internal/rio"
	"github.com/s3pg/s3pg/internal/shacl"
	"github.com/s3pg/s3pg/internal/shapeex"
)

// testDataset materializes one seeded synthetic dataset (shapes + data as
// strings) shared by all tests — regenerating it per test would dominate the
// suite's runtime.
var testDataset = sync.OnceValues(func() (string, string) {
	p := datagen.University()
	g := datagen.Generate(p, 0.3, 7)
	shapes := shapeex.Extract(g, shapeex.Options{MinSupport: 0.01})

	var sb bytes.Buffer
	tw := rio.NewTurtleWriter()
	tw.Prefix("d", p.NS)
	tw.Prefix("shape", shapeex.ShapeNS)
	if err := tw.Write(&sb, shacl.ToGraph(shapes)); err != nil {
		panic(err)
	}
	var db bytes.Buffer
	if err := rio.WriteNTriples(&db, g); err != nil {
		panic(err)
	}
	return sb.String(), db.String()
})

// quickRetry keeps injected-fault tests fast and deterministic.
var quickRetry = faultio.RetryPolicy{
	MaxAttempts: 4,
	BaseDelay:   time.Millisecond,
	MaxDelay:    4 * time.Millisecond,
	Seed:        1,
}

// tlogWriter routes structured log lines into the test log.
type tlogWriter struct{ t *testing.T }

func (w tlogWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", bytes.TrimRight(p, "\n"))
	return len(p), nil
}

func testLogger(t *testing.T) *obs.Logger { return obs.NewLogger(tlogWriter{t}, "test") }

func testConfig(t *testing.T) Config {
	t.Helper()
	return Config{
		Dir:       filepath.Join(t.TempDir(), "spool"),
		ChunkSize: 64, // small chunks → every job crosses many checkpoints
		Workers:   2,
		Retry:     quickRetry,
		Log:       testLogger(t),
	}
}

func mustOpen(t *testing.T, cfg Config) *Manager {
	t.Helper()
	m, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

// waitTerminal polls until the job reaches a terminal state.
func waitTerminal(t *testing.T, m *Manager, id string) Job {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		j, err := m.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if j.State.Terminal() {
			return j
		}
		time.Sleep(5 * time.Millisecond)
	}
	j, _ := m.Get(id)
	t.Fatalf("job %s not terminal after 30s (state %s)", id, j.State)
	return Job{}
}

func readOutputs(t *testing.T, m *Manager, id string) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	for _, name := range OutputFiles {
		p, err := m.OutputPath(id, name)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		out[name] = raw
	}
	return out
}

func TestSubmitRunsToDone(t *testing.T) {
	shapes, data := testDataset()
	m := mustOpen(t, testConfig(t))
	j, err := m.Submit(Spec{}, shapes, data)
	if err != nil {
		t.Fatal(err)
	}
	if j.State != StateQueued || j.ID == "" {
		t.Fatalf("submit snapshot: %+v", j)
	}
	got := waitTerminal(t, m, j.ID)
	if got.State != StateDone {
		t.Fatalf("job ended %s: %s", got.State, got.Error)
	}
	if got.Statements == 0 || got.Nodes == 0 || got.Edges == 0 {
		t.Fatalf("done job has empty tallies: %+v", got)
	}
	if len(got.Outputs) != len(OutputFiles) {
		t.Fatalf("outputs: %v", got.Outputs)
	}
	for name, raw := range readOutputs(t, m, j.ID) {
		if len(raw) == 0 {
			t.Fatalf("output %s is empty", name)
		}
	}
	// The consumed checkpoint must be gone.
	if _, err := os.Stat(filepath.Join(m.jobDir(j.ID), ckptFile)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("checkpoint survived completion: %v", err)
	}
}

func TestSubmitValidation(t *testing.T) {
	shapes, data := testDataset()
	m := mustOpen(t, testConfig(t))
	cases := []struct {
		name   string
		spec   Spec
		shapes string
	}{
		{"unknown mode", Spec{Mode: "extravagant"}, shapes},
		{"negative timeout", Spec{Timeout: -time.Second}, shapes},
		{"unparsable shapes", Spec{}, "@prefix broken"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := m.Submit(tc.spec, tc.shapes, data); !errors.Is(err, ErrInvalid) {
				t.Fatalf("want ErrInvalid, got %v", err)
			}
		})
	}
	// Rejections leave no spool litter that a restart would misread as jobs.
	m2 := mustOpen(t, Config{Dir: m.cfg.Dir, Retry: quickRetry})
	if n := len(m2.List()); n != 0 {
		t.Fatalf("rejected submissions left %d recoverable jobs", n)
	}
}

func TestAdmissionControl(t *testing.T) {
	shapes, data := testDataset()
	cfg := testConfig(t)
	cfg.Workers = 1
	cfg.QueueDepth = 2
	release := make(chan struct{})
	var once sync.Once
	started := make(chan struct{})
	cfg.BeforeChunk = func(string, int) {
		once.Do(func() { close(started) })
		<-release
	}
	m := mustOpen(t, cfg)
	defer close(release)

	// First job occupies the single worker...
	if _, err := m.Submit(Spec{}, shapes, data); err != nil {
		t.Fatal(err)
	}
	<-started
	// ...two more fill the queue...
	for i := 0; i < 2; i++ {
		if _, err := m.Submit(Spec{}, shapes, data); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	// ...and the next is rejected with queue-full.
	if _, err := m.Submit(Spec{}, shapes, data); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("want ErrQueueFull, got %v", err)
	}
	if err := m.Ready(); err != nil {
		t.Fatalf("queue-full must not flip readiness (load-shedding is per-request): %v", err)
	}
}

func TestAdmissionMemWatermark(t *testing.T) {
	shapes, data := testDataset()
	cfg := testConfig(t)
	cfg.MaxMemMB = 1
	// A GC between Open and Submit can briefly drop HeapAlloc below 1 MiB;
	// live ballast keeps the watermark check deterministic.
	ballast := make([]byte, 4<<20)
	m := mustOpen(t, cfg)
	if _, err := m.Submit(Spec{}, shapes, data); !errors.Is(err, ErrMemPressure) {
		t.Fatalf("want ErrMemPressure, got %v", err)
	}
	if err := m.Ready(); !errors.Is(err, ErrMemPressure) {
		t.Fatalf("readiness under memory pressure: %v", err)
	}
	runtime.KeepAlive(ballast)
}

// TestAdmissionMemHysteresis: the pressure latch sets at the MaxMemMB high
// watermark and clears only under the MemLowMB low one — inside the band the
// decision holds whatever side it last latched to, so admission cannot flap
// while the heap hovers around a single threshold.
func TestAdmissionMemHysteresis(t *testing.T) {
	shapes, data := testDataset()
	cfg := testConfig(t)
	cfg.MaxMemMB = 100
	cfg.MemLowMB = 80
	m := mustOpen(t, cfg)
	heap := uint64(50) << 20
	m.readHeap = func() uint64 { return heap }

	if err := m.Ready(); err != nil {
		t.Fatalf("under the band: %v", err)
	}
	// Climb into the band from below: still ready (latch not set).
	heap = 90 << 20
	if err := m.Ready(); err != nil {
		t.Fatalf("in band from below: %v", err)
	}
	// Cross the high watermark: latch sets, admission closes.
	heap = 101 << 20
	if err := m.Ready(); !errors.Is(err, ErrMemPressure) {
		t.Fatalf("over high watermark: %v", err)
	}
	if _, err := m.Submit(Spec{}, shapes, data); !errors.Is(err, ErrMemPressure) {
		t.Fatalf("submit over high watermark: %v", err)
	}
	// Fall back into the band: the latch holds, still shedding.
	heap = 90 << 20
	if err := m.Ready(); !errors.Is(err, ErrMemPressure) {
		t.Fatalf("in band from above must stay latched: %v", err)
	}
	// Only under the low watermark does admission reopen.
	heap = 79 << 20
	if err := m.Ready(); err != nil {
		t.Fatalf("under low watermark: %v", err)
	}
	if _, err := m.Submit(Spec{}, shapes, data); err != nil {
		t.Fatalf("submit after latch cleared: %v", err)
	}
}

func TestAdmissionDraining(t *testing.T) {
	shapes, data := testDataset()
	m := mustOpen(t, testConfig(t))
	if err := m.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(Spec{}, shapes, data); !errors.Is(err, ErrDraining) {
		t.Fatalf("want ErrDraining, got %v", err)
	}
	if err := m.Ready(); !errors.Is(err, ErrDraining) {
		t.Fatalf("readiness while draining: %v", err)
	}
}

// TestDrainRequeuesAndResumesByteIdentical is the core drain contract: a
// drain mid-transform checkpoints the job, a fresh Manager over the same
// spool resumes it, and the outputs are byte-identical to an uninterrupted
// run with the same chunking (Prop. 4.3).
func TestDrainRequeuesAndResumesByteIdentical(t *testing.T) {
	shapes, data := testDataset()

	// Uninterrupted baseline.
	base := mustOpen(t, testConfig(t))
	bj, err := base.Submit(Spec{}, shapes, data)
	if err != nil {
		t.Fatal(err)
	}
	if got := waitTerminal(t, base, bj.ID); got.State != StateDone {
		t.Fatalf("baseline failed: %s", got.Error)
	}
	want := readOutputs(t, base, bj.ID)

	// Interrupted run: block the worker a few chunks in, drain underneath it.
	cfg := testConfig(t)
	cfg.Workers = 1
	blocked := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	cfg.BeforeChunk = func(_ string, chunk int) {
		if chunk == 3 {
			once.Do(func() { close(blocked) })
			<-release
		}
	}
	m, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	j, err := m.Submit(Spec{}, shapes, data)
	if err != nil {
		t.Fatal(err)
	}
	<-blocked
	drained := make(chan error, 1)
	go func() { drained <- m.Drain(context.Background()) }()
	// Drain flips the flag synchronously; wait until it is visible, then let
	// the worker run into the canceled context.
	for m.Stats().Draining == false {
		time.Sleep(time.Millisecond)
	}
	close(release)
	if err := <-drained; err != nil {
		t.Fatal(err)
	}
	got, err := m.Get(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateQueued {
		t.Fatalf("drained job state: %s (%s)", got.State, got.Error)
	}
	if _, err := os.Stat(filepath.Join(m.jobDir(j.ID), ckptFile)); err != nil {
		t.Fatalf("drained job has no checkpoint: %v", err)
	}

	// Restart: a fresh Manager on the same spool recovers and finishes it.
	cfg2 := testConfig(t)
	cfg2.Dir = cfg.Dir
	m2 := mustOpen(t, cfg2)
	final := waitTerminal(t, m2, j.ID)
	if final.State != StateDone {
		t.Fatalf("resumed job failed: %s", final.Error)
	}
	if final.Resumes == 0 {
		t.Fatal("resumed job did not count a checkpoint resume")
	}
	gotOut := readOutputs(t, m2, j.ID)
	for _, name := range OutputFiles {
		if !bytes.Equal(gotOut[name], want[name]) {
			t.Errorf("%s differs between drained/resumed run and baseline (%d vs %d bytes)",
				name, len(gotOut[name]), len(want[name]))
		}
	}
	if final.Statements != waitTerminal(t, base, bj.ID).Statements {
		t.Fatalf("statement tallies diverged: %d vs baseline", final.Statements)
	}
}

// TestPanicIsolation: a panicking job is marked failed with the panic in its
// error, and the worker pool keeps serving other jobs.
func TestPanicIsolation(t *testing.T) {
	shapes, data := testDataset()
	cfg := testConfig(t)
	cfg.Workers = 1 // the panicking job and the healthy one share one worker
	var poisoned string
	var mu sync.Mutex
	cfg.BeforeChunk = func(id string, _ int) {
		mu.Lock()
		bad := id == poisoned
		mu.Unlock()
		if bad {
			panic("synthetic transform bug")
		}
	}
	m := mustOpen(t, cfg)
	bad, err := m.Submit(Spec{}, shapes, data)
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	poisoned = bad.ID
	mu.Unlock()
	good, err := m.Submit(Spec{}, shapes, data)
	if err != nil {
		t.Fatal(err)
	}
	badJ := waitTerminal(t, m, bad.ID)
	if badJ.State != StateFailed || !strings.Contains(badJ.Error, "synthetic transform bug") {
		t.Fatalf("poisoned job: state=%s err=%q", badJ.State, badJ.Error)
	}
	goodJ := waitTerminal(t, m, good.ID)
	if goodJ.State != StateDone {
		t.Fatalf("healthy job after a pool panic: state=%s err=%q", goodJ.State, goodJ.Error)
	}
}

// TestDeadlinePropagation: a job timeout expires mid-run and fails the job
// without disturbing the pool; drain cancellation is not mistaken for it.
func TestDeadlinePropagation(t *testing.T) {
	shapes, data := testDataset()
	cfg := testConfig(t)
	cfg.BeforeChunk = func(_ string, chunk int) {
		if chunk > 0 {
			time.Sleep(20 * time.Millisecond) // guarantee the deadline lands mid-run
		}
	}
	m := mustOpen(t, cfg)
	j, err := m.Submit(Spec{Timeout: 50 * time.Millisecond}, shapes, data)
	if err != nil {
		t.Fatal(err)
	}
	got := waitTerminal(t, m, j.ID)
	if got.State != StateFailed || !strings.Contains(got.Error, "deadline exceeded") {
		t.Fatalf("timed-out job: state=%s err=%q", got.State, got.Error)
	}
	// The pool survives: an untimed job still completes.
	ok, err := m.Submit(Spec{}, shapes, data)
	if err != nil {
		t.Fatal(err)
	}
	if got := waitTerminal(t, m, ok.ID); got.State != StateDone {
		t.Fatalf("job after a deadline failure: %s (%s)", got.State, got.Error)
	}
}

// TestRecoverRunningJobOnOpen: a manifest left in state "running" by a dead
// process is requeued (and completed) by the next Open.
func TestRecoverRunningJobOnOpen(t *testing.T) {
	shapes, data := testDataset()
	cfg := testConfig(t)
	m := mustOpen(t, cfg)
	j, err := m.Submit(Spec{}, shapes, data)
	if err != nil {
		t.Fatal(err)
	}
	if got := waitTerminal(t, m, j.ID); got.State != StateDone {
		t.Fatal(got.Error)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	// Forge a crash: rewrite the manifest as if the process died mid-run.
	dir := m.jobDir(j.ID)
	crashed, err := loadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	crashed.State = StateRunning
	crashed.Statements, crashed.Nodes, crashed.Edges = 0, 0, 0
	crashed.Outputs = nil
	writeManifest(t, dir, crashed)
	// Torn spool directory (no manifest) must be skipped, not recovered.
	if err := os.MkdirAll(filepath.Join(cfg.Dir, "j999999-deadbeef"), 0o755); err != nil {
		t.Fatal(err)
	}

	m2 := mustOpen(t, Config{Dir: cfg.Dir, ChunkSize: 64, Retry: quickRetry, Log: testLogger(t)})
	if _, err := m2.Get("j999999-deadbeef"); !errors.Is(err, ErrUnknownJob) {
		t.Fatal("torn spool directory was recovered as a job")
	}
	got := waitTerminal(t, m2, j.ID)
	if got.State != StateDone {
		t.Fatalf("recovered job: %s (%s)", got.State, got.Error)
	}
}

func writeManifest(t *testing.T, dir string, j *Job) {
	t.Helper()
	buf, err := json.Marshal(j)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, manifestFile), buf, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestCommitFaultsRetryToCompletion: recoverable filesystem faults recurring
// on a global schedule are absorbed by the retry policy and the job still
// completes with byte-exact outputs.
func TestCommitFaultsRetryToCompletion(t *testing.T) {
	shapes, data := testDataset()

	base := mustOpen(t, testConfig(t))
	bj, err := base.Submit(Spec{}, shapes, data)
	if err != nil {
		t.Fatal(err)
	}
	if got := waitTerminal(t, base, bj.ID); got.State != StateDone {
		t.Fatal(got.Error)
	}
	want := readOutputs(t, base, bj.ID)

	cfg := testConfig(t)
	cfg.FS = &faultio.FS{TransientEvery: 7}
	m := mustOpen(t, cfg)
	j, err := m.Submit(Spec{}, shapes, data)
	if err != nil {
		t.Fatal(err)
	}
	got := waitTerminal(t, m, j.ID)
	if got.State != StateDone {
		t.Fatalf("job under transient faults: %s (%s)", got.State, got.Error)
	}
	for _, name := range OutputFiles {
		gotOut := readOutputs(t, m, j.ID)
		if !bytes.Equal(gotOut[name], want[name]) {
			t.Errorf("%s differs under injected faults", name)
		}
	}
}

// toggleFS fails every commit while broken (with a transient error, so the
// retry budget is exhausted each time) and passes through once healed.
type toggleFS struct {
	mu     sync.Mutex
	broken bool
}

func (f *toggleFS) failing() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.broken {
		return fmt.Errorf("%w: storage offline", faultio.ErrTransient)
	}
	return nil
}

func (f *toggleFS) CreateTemp(dir, pattern string) (ckpt.File, error) {
	if err := f.failing(); err != nil {
		return nil, err
	}
	return ckpt.OSFS.CreateTemp(dir, pattern)
}
func (f *toggleFS) Rename(o, n string) error {
	if err := f.failing(); err != nil {
		return err
	}
	return ckpt.OSFS.Rename(o, n)
}
func (f *toggleFS) Remove(name string) error               { return ckpt.OSFS.Remove(name) }
func (f *toggleFS) Chmod(name string, m os.FileMode) error { return ckpt.OSFS.Chmod(name, m) }
func (f *toggleFS) SyncDir(dir string) error               { return ckpt.OSFS.SyncDir(dir) }

// TestBreakerShedsAndRecovers: commits failing past the retry budget trip
// the breaker (submissions shed fast, readiness flips not-ready); once the
// storage heals and the cooldown elapses, a trial commit closes it again.
func TestBreakerShedsAndRecovers(t *testing.T) {
	shapes, data := testDataset()
	cfg := testConfig(t)
	cfg.BreakerThreshold = 2
	cfg.BreakerCooldown = 30 * time.Millisecond
	tfs := &toggleFS{broken: true}
	cfg.FS = tfs
	m := mustOpen(t, cfg)

	// Each failed submission is one retry-exhausted commit; threshold trips.
	for i := 0; i < cfg.BreakerThreshold; i++ {
		if _, err := m.Submit(Spec{}, shapes, data); !errors.Is(err, faultio.ErrTransient) {
			t.Fatalf("submit %d through broken storage: %v", i, err)
		}
	}
	if got := m.breaker.State(); got != "open" {
		t.Fatalf("breaker after %d exhausted commits: %s", cfg.BreakerThreshold, got)
	}
	if err := m.Ready(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("readiness with the breaker open: %v", err)
	}
	// While open, work is shed without touching storage.
	if _, err := m.Submit(Spec{}, shapes, data); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open breaker did not shed: %v", err)
	}

	// Heal the storage, wait out the cooldown: the next submission is the
	// half-open trial, closes the breaker, and the job completes.
	tfs.mu.Lock()
	tfs.broken = false
	tfs.mu.Unlock()
	time.Sleep(2 * cfg.BreakerCooldown)
	j, err := m.Submit(Spec{}, shapes, data)
	if err != nil {
		t.Fatalf("submission after heal+cooldown: %v", err)
	}
	if got := waitTerminal(t, m, j.ID); got.State != StateDone {
		t.Fatalf("job after breaker recovery: %s (%s)", got.State, got.Error)
	}
	if got := m.breaker.State(); got != "closed" {
		t.Fatalf("breaker after recovery: %s", got)
	}
	if err := m.Ready(); err != nil {
		t.Fatalf("readiness after recovery: %v", err)
	}
}
