package shacl_test

import (
	"testing"

	"github.com/s3pg/s3pg/internal/fixtures"
	"github.com/s3pg/s3pg/internal/rdf"
	"github.com/s3pg/s3pg/internal/rio"
	"github.com/s3pg/s3pg/internal/shacl"
)

func TestLoadUniversitySchema(t *testing.T) {
	s := fixtures.UniversityShapes()
	if got, want := s.Len(), 9; got != want {
		t.Fatalf("shape count = %d, want %d\n%s", got, want, s)
	}

	person := s.Get(fixtures.Shape("Person"))
	if person == nil {
		t.Fatal("Person shape missing")
	}
	if person.TargetClass != fixtures.ExNS+"Person" {
		t.Fatalf("Person target class = %q", person.TargetClass)
	}
	if len(person.Properties) != 2 {
		t.Fatalf("Person properties = %d", len(person.Properties))
	}

	var name, dob *shacl.PropertyShape
	for _, p := range person.Properties {
		switch p.Path {
		case fixtures.ExNS + "name":
			name = p
		case fixtures.ExNS + "dob":
			dob = p
		}
	}
	if name == nil || dob == nil {
		t.Fatal("name/dob property shapes missing")
	}
	if name.MinCount != 1 || name.MaxCount != 1 {
		t.Fatalf("name cardinality = [%d..%d]", name.MinCount, name.MaxCount)
	}
	if name.Category() != shacl.SingleTypeLiteral {
		t.Fatalf("name category = %v", name.Category())
	}
	if len(dob.Types) != 3 || dob.Category() != shacl.MultiTypeHomoLiteral {
		t.Fatalf("dob types = %v, category = %v", dob.Types, dob.Category())
	}
	if dob.MinCount != 0 || dob.MaxCount != 3 {
		t.Fatalf("dob cardinality = [%d..%d]", dob.MinCount, dob.MaxCount)
	}
}

func TestCategoryTaxonomy(t *testing.T) {
	cases := []struct {
		types []shacl.TypeRef
		want  shacl.Category
	}{
		{[]shacl.TypeRef{shacl.LiteralRef(rdf.XSDString)}, shacl.SingleTypeLiteral},
		{[]shacl.TypeRef{shacl.ClassRef("http://x/C")}, shacl.SingleTypeNonLiteral},
		{[]shacl.TypeRef{shacl.ShapeRef("http://x/S")}, shacl.SingleTypeNonLiteral},
		{[]shacl.TypeRef{shacl.LiteralRef(rdf.XSDString), shacl.LiteralRef(rdf.XSDDate)}, shacl.MultiTypeHomoLiteral},
		{[]shacl.TypeRef{shacl.ClassRef("http://x/C"), shacl.ClassRef("http://x/D")}, shacl.MultiTypeHomoNonLiteral},
		{[]shacl.TypeRef{shacl.ClassRef("http://x/C"), shacl.LiteralRef(rdf.XSDString)}, shacl.MultiTypeHetero},
	}
	for _, c := range cases {
		ps := &shacl.PropertyShape{Path: "http://x/p", Types: c.types}
		if got := ps.Category(); got != c.want {
			t.Errorf("Category(%v) = %v, want %v", c.types, got, c.want)
		}
	}
}

func TestEffectivePropertiesInheritance(t *testing.T) {
	s := fixtures.UniversityShapes()
	props := s.EffectiveProperties(fixtures.Shape("GraduateStudent"))
	// Person(name, dob) + Student(regNo, advisedBy) + GS(takesCourse) = 5.
	if len(props) != 5 {
		t.Fatalf("effective properties = %d: %v", len(props), props)
	}
	// Parents first: name must come before takesCourse.
	idx := map[string]int{}
	for i, p := range props {
		idx[p.Path] = i
	}
	if idx[fixtures.ExNS+"name"] > idx[fixtures.ExNS+"takesCourse"] {
		t.Fatal("inherited properties must precede owned ones")
	}
}

func TestEffectivePropertiesCycleSafe(t *testing.T) {
	s := shacl.NewSchema()
	s.Add(&shacl.NodeShape{Name: "A", Extends: []string{"B"},
		Properties: []*shacl.PropertyShape{{Path: "pa", Types: []shacl.TypeRef{shacl.LiteralRef(rdf.XSDString)}, MaxCount: 1}}})
	s.Add(&shacl.NodeShape{Name: "B", Extends: []string{"A"},
		Properties: []*shacl.PropertyShape{{Path: "pb", Types: []shacl.TypeRef{shacl.LiteralRef(rdf.XSDString)}, MaxCount: 1}}})
	props := s.EffectiveProperties("A")
	if len(props) != 2 {
		t.Fatalf("cyclic effective properties = %v", props)
	}
}

func TestSchemaGraphRoundTrip(t *testing.T) {
	s := fixtures.UniversityShapes()
	g := shacl.ToGraph(s)
	back, err := shacl.FromGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Equal(back) {
		t.Fatalf("schema round trip mismatch:\noriginal:\n%s\nback:\n%s", s, back)
	}
}

func TestSchemaEqualDetectsDifferences(t *testing.T) {
	a := fixtures.UniversityShapes()
	b := fixtures.UniversityShapes()
	if !a.Equal(b) {
		t.Fatal("identical schemas not equal")
	}
	b.Get(fixtures.Shape("Person")).Properties[0].MaxCount = 5
	if a.Equal(b) {
		t.Fatal("cardinality change not detected")
	}
	c := fixtures.UniversityShapes()
	c.Get(fixtures.Shape("Person")).Properties[0].Types = []shacl.TypeRef{shacl.LiteralRef(rdf.XSDInteger)}
	if a.Equal(c) {
		t.Fatal("type change not detected")
	}
}

func TestValidateUniversityConforms(t *testing.T) {
	g := fixtures.UniversityGraph()
	s := fixtures.UniversityShapes()
	if vs := shacl.Validate(g, s); len(vs) != 0 {
		for _, v := range vs {
			t.Errorf("unexpected violation: %s", v)
		}
	}
}

func TestValidateCardinalityViolations(t *testing.T) {
	g := fixtures.UniversityGraph()
	s := fixtures.UniversityShapes()

	// Remove bob's mandatory regNo → minCount violation on Student shape.
	g.Remove(rdf.NewTriple(fixtures.Ex("bob"), fixtures.Ex("regNo"), rdf.NewLiteral("Bs12")))
	vs := shacl.Validate(g, s)
	if len(vs) == 0 {
		t.Fatal("expected minCount violation")
	}
	found := false
	for _, v := range vs {
		if v.Path == fixtures.ExNS+"regNo" && v.Entity == fixtures.Ex("bob") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no regNo violation among %v", vs)
	}

	// Add a second name → maxCount violation.
	g2 := fixtures.UniversityGraph()
	g2.Add(rdf.NewTriple(fixtures.Ex("alice"), fixtures.Ex("name"), rdf.NewLiteral("Alicia")))
	vs2 := shacl.Validate(g2, s)
	foundMax := false
	for _, v := range vs2 {
		if v.Path == fixtures.ExNS+"name" && v.Entity == fixtures.Ex("alice") {
			foundMax = true
		}
	}
	if !foundMax {
		t.Fatalf("no maxCount violation among %v", vs2)
	}
}

func TestValidateTypeViolations(t *testing.T) {
	g := fixtures.UniversityGraph()
	s := fixtures.UniversityShapes()

	// An integer name violates the xsd:string datatype constraint.
	g.Remove(rdf.NewTriple(fixtures.Ex("alice"), fixtures.Ex("name"), rdf.NewLiteral("Alice")))
	g.Add(rdf.NewTriple(fixtures.Ex("alice"), fixtures.Ex("name"), rdf.NewTypedLiteral("42", rdf.XSDInteger)))
	vs := shacl.Validate(g, s)
	found := false
	for _, v := range vs {
		if v.Path == fixtures.ExNS+"name" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no datatype violation among %v", vs)
	}

	// advisedBy pointing at a Department matches none of the class alternatives.
	g2 := fixtures.UniversityGraph()
	g2.Add(rdf.NewTriple(fixtures.Ex("bob"), fixtures.Ex("advisedBy"), fixtures.Ex("CS")))
	vs2 := shacl.Validate(g2, s)
	found2 := false
	for _, v := range vs2 {
		if v.Path == fixtures.ExNS+"advisedBy" {
			found2 = true
		}
	}
	if !found2 {
		t.Fatalf("no class violation among %v", vs2)
	}
}

func TestValidateHeterogeneousProperty(t *testing.T) {
	g := fixtures.UniversityGraph()
	s := fixtures.UniversityShapes()
	// A string takesCourse is fine (heterogeneous alternative)…
	g.Add(rdf.NewTriple(fixtures.Ex("bob"), fixtures.Ex("takesCourse"), rdf.NewLiteral("Algorithms")))
	if vs := shacl.Validate(g, s); len(vs) != 0 {
		t.Fatalf("string course should conform: %v", vs)
	}
	// …but an integer one is not among the alternatives.
	g.Add(rdf.NewTriple(fixtures.Ex("bob"), fixtures.Ex("takesCourse"), rdf.NewTypedLiteral("7", rdf.XSDInteger)))
	if vs := shacl.Validate(g, s); len(vs) == 0 {
		t.Fatal("integer course should violate takesCourse alternatives")
	}
}

func TestValidateSubclassInstances(t *testing.T) {
	// advisedBy requires Person|Professor|Faculty; a GraduateStudent advisor
	// qualifies as Person through the subclass hierarchy.
	g := fixtures.UniversityGraph()
	s := fixtures.UniversityShapes()
	g.Add(rdf.NewTriple(fixtures.Ex("carol"), rdf.A, fixtures.Ex("Person")))
	g.Add(rdf.NewTriple(fixtures.Ex("carol"), rdf.A, fixtures.Ex("Student")))
	g.Add(rdf.NewTriple(fixtures.Ex("carol"), fixtures.Ex("name"), rdf.NewLiteral("Carol")))
	g.Add(rdf.NewTriple(fixtures.Ex("carol"), fixtures.Ex("regNo"), rdf.NewLiteral("Cs77")))
	g.Add(rdf.NewTriple(fixtures.Ex("carol"), fixtures.Ex("advisedBy"), fixtures.Ex("alice")))
	if vs := shacl.Validate(g, s); len(vs) != 0 {
		t.Fatalf("carol should conform: %v", vs)
	}
}

func TestLoadErrors(t *testing.T) {
	bad := []string{
		// Property shape without sh:path.
		`@prefix sh: <http://www.w3.org/ns/shacl#> .
		 @prefix ex: <http://x/> .
		 ex:S a sh:NodeShape ; sh:targetClass ex:C ; sh:property [ sh:minCount 1 ] .`,
		// minCount > maxCount.
		`@prefix sh: <http://www.w3.org/ns/shacl#> .
		 @prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
		 @prefix ex: <http://x/> .
		 ex:S a sh:NodeShape ; sh:targetClass ex:C ;
		   sh:property [ sh:path ex:p ; sh:datatype xsd:string ; sh:minCount 3 ; sh:maxCount 1 ] .`,
		// No type constraint at all.
		`@prefix sh: <http://www.w3.org/ns/shacl#> .
		 @prefix ex: <http://x/> .
		 ex:S a sh:NodeShape ; sh:targetClass ex:C ;
		   sh:property [ sh:path ex:p ; sh:minCount 1 ] .`,
		// Both datatype and class on one alternative.
		`@prefix sh: <http://www.w3.org/ns/shacl#> .
		 @prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
		 @prefix ex: <http://x/> .
		 ex:S a sh:NodeShape ; sh:targetClass ex:C ;
		   sh:property [ sh:path ex:p ; sh:datatype xsd:string ; sh:class ex:D ] .`,
	}
	for i, src := range bad {
		g, err := rio.ParseTurtle(src)
		if err != nil {
			t.Fatalf("case %d: turtle error: %v", i, err)
		}
		if _, err := shacl.FromGraph(g); err == nil {
			t.Errorf("case %d: expected schema load error", i)
		}
	}
}

func TestShapeRefVsClassRef(t *testing.T) {
	// sh:node inside a property shape referring to a declared node shape is a
	// shape reference; referring to an undeclared IRI degrades to a class ref.
	src := `
@prefix sh: <http://www.w3.org/ns/shacl#> .
@prefix ex: <http://x/> .
ex:T a sh:NodeShape ; sh:targetClass ex:TC .
ex:S a sh:NodeShape ; sh:targetClass ex:C ;
  sh:property [ sh:path ex:p ; sh:node ex:T ; sh:minCount 1 ] ;
  sh:property [ sh:path ex:q ; sh:node ex:NotAShape ; sh:minCount 1 ] .
`
	g, err := rio.ParseTurtle(src)
	if err != nil {
		t.Fatal(err)
	}
	s, err := shacl.FromGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	shapeS := s.Get("http://x/S")
	var p, q *shacl.PropertyShape
	for _, ps := range shapeS.Properties {
		switch ps.Path {
		case "http://x/p":
			p = ps
		case "http://x/q":
			q = ps
		}
	}
	if p.Types[0].Shape != "http://x/T" {
		t.Fatalf("p type = %v, want shape ref", p.Types[0])
	}
	if q.Types[0].Class != "http://x/NotAShape" {
		t.Fatalf("q type = %v, want class ref", q.Types[0])
	}
}

func TestValidateShapeRefConstraint(t *testing.T) {
	src := `
@prefix sh: <http://www.w3.org/ns/shacl#> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
@prefix ex: <http://x/> .
ex:AddrShape a sh:NodeShape ; sh:targetClass ex:Addr ;
  sh:property [ sh:path ex:zip ; sh:datatype xsd:string ; sh:minCount 1 ; sh:maxCount 1 ] .
ex:PersonShape a sh:NodeShape ; sh:targetClass ex:P ;
  sh:property [ sh:path ex:addr ; sh:node ex:AddrShape ; sh:minCount 1 ] .
`
	sg, err := rio.ParseTurtle(src)
	if err != nil {
		t.Fatal(err)
	}
	s, err := shacl.FromGraph(sg)
	if err != nil {
		t.Fatal(err)
	}
	x := func(l string) rdf.Term { return rdf.NewIRI("http://x/" + l) }

	good := rdf.NewGraph()
	good.Add(rdf.NewTriple(x("p1"), rdf.A, x("P")))
	good.Add(rdf.NewTriple(x("a1"), rdf.A, x("Addr")))
	good.Add(rdf.NewTriple(x("a1"), x("zip"), rdf.NewLiteral("9000")))
	good.Add(rdf.NewTriple(x("p1"), x("addr"), x("a1")))
	if vs := shacl.Validate(good, s); len(vs) != 0 {
		t.Fatalf("good graph violations: %v", vs)
	}

	// Address missing its zip: p1's addr value no longer conforms.
	bad := rdf.NewGraph()
	bad.Add(rdf.NewTriple(x("p1"), rdf.A, x("P")))
	bad.Add(rdf.NewTriple(x("a1"), rdf.A, x("Addr")))
	bad.Add(rdf.NewTriple(x("p1"), x("addr"), x("a1")))
	if vs := shacl.Validate(bad, s); len(vs) == 0 {
		t.Fatal("expected violations for non-conforming shape-ref value")
	}
}
