// Package shacl implements the SHACL core subset of the paper's
// Definition 2.2/2.3: node shapes with target classes, shape inheritance via
// sh:node, and property shapes carrying datatype/class/shape type constraints
// (optionally disjunctive via sh:or) and min/max cardinality constraints.
//
// The package provides the shape model, a loader from an RDF graph (shapes
// are authored in Turtle, cf. Figure 4 of the paper), a serializer back to
// RDF, and a validator implementing the conformance semantics G ⊨ S_G.
package shacl

import (
	"fmt"
	"sort"
	"strings"
)

// Unbounded is the MaxCount value representing ∞.
const Unbounded = -1

// TypeRef is one alternative in a property shape's type constraint T_p.
// Exactly one of Datatype, Class, or Shape is set:
//
//   - Datatype: a literal value type constraint (sh:datatype);
//   - Class: a class value type constraint (sh:class with sh:nodeKind sh:IRI);
//   - Shape: a node type value-based constraint (sh:node referencing a shape).
type TypeRef struct {
	Datatype string
	Class    string
	Shape    string
}

// LiteralRef builds a literal type alternative.
func LiteralRef(datatype string) TypeRef { return TypeRef{Datatype: datatype} }

// ClassRef builds a class type alternative.
func ClassRef(class string) TypeRef { return TypeRef{Class: class} }

// ShapeRef builds a node-shape type alternative.
func ShapeRef(shape string) TypeRef { return TypeRef{Shape: shape} }

// IsLiteral reports whether the alternative constrains to a literal datatype.
func (r TypeRef) IsLiteral() bool { return r.Datatype != "" }

// String renders the alternative for diagnostics.
func (r TypeRef) String() string {
	switch {
	case r.Datatype != "":
		return "literal:" + r.Datatype
	case r.Class != "":
		return "class:" + r.Class
	case r.Shape != "":
		return "shape:" + r.Shape
	default:
		return "any"
	}
}

// Category classifies a property shape according to the Figure 3 taxonomy.
// The category drives both the schema transformation rules (§4.1) and the
// Table 3 shape statistics.
type Category uint8

// The five leaf categories of the Figure 3 taxonomy.
const (
	SingleTypeLiteral Category = iota + 1
	SingleTypeNonLiteral
	MultiTypeHomoLiteral
	MultiTypeHomoNonLiteral
	MultiTypeHetero
)

// String returns the paper's name for the category.
func (c Category) String() string {
	switch c {
	case SingleTypeLiteral:
		return "single-type literal"
	case SingleTypeNonLiteral:
		return "single-type non-literal"
	case MultiTypeHomoLiteral:
		return "multi-type homogeneous literal"
	case MultiTypeHomoNonLiteral:
		return "multi-type homogeneous non-literal"
	case MultiTypeHetero:
		return "multi-type heterogeneous"
	default:
		return fmt.Sprintf("Category(%d)", uint8(c))
	}
}

// PropertyShape is φ = ⟨τ_p, T_p, C_p⟩ of Definition 2.2.
type PropertyShape struct {
	// Path is the target property IRI τ_p.
	Path string
	// Types is the set of type alternatives T_p. A singleton slice encodes
	// a single-type constraint; multiple entries encode an sh:or.
	Types []TypeRef
	// MinCount and MaxCount are the cardinality pair C_p = (n, m);
	// MaxCount == Unbounded encodes m = ∞.
	MinCount int
	MaxCount int
}

// Category classifies the property shape in the Figure 3 taxonomy.
func (p *PropertyShape) Category() Category {
	lit, nonLit := 0, 0
	for _, t := range p.Types {
		if t.IsLiteral() {
			lit++
		} else {
			nonLit++
		}
	}
	switch {
	case lit > 0 && nonLit > 0:
		return MultiTypeHetero
	case lit == 1 && nonLit == 0:
		return SingleTypeLiteral
	case lit == 0 && nonLit == 1:
		return SingleTypeNonLiteral
	case lit > 1:
		return MultiTypeHomoLiteral
	default:
		return MultiTypeHomoNonLiteral
	}
}

// SingleValued reports whether the cardinality admits at most one value
// ([0..1] or [1..1]), the precondition for the parsimonious key/value
// encoding (Algorithm 1, lines 21–23).
func (p *PropertyShape) SingleValued() bool {
	return p.MaxCount == 1
}

// NodeShape is ⟨s, τ_s, Φ_s⟩ of Definition 2.2.
type NodeShape struct {
	// Name is the shape IRI s.
	Name string
	// TargetClass is τ_s when it refers to a class (sh:targetClass).
	TargetClass string
	// Extends lists node shapes this shape inherits from (sh:node).
	Extends []string
	// Properties is Φ_s, the owned (non-inherited) property shapes.
	Properties []*PropertyShape
}

// Schema is the shape schema S_G: an ordered collection of node shapes.
type Schema struct {
	shapes map[string]*NodeShape
	order  []string
}

// NewSchema returns an empty shape schema.
func NewSchema() *Schema {
	return &Schema{shapes: make(map[string]*NodeShape)}
}

// Add inserts or replaces a node shape.
func (s *Schema) Add(ns *NodeShape) {
	if _, ok := s.shapes[ns.Name]; !ok {
		s.order = append(s.order, ns.Name)
	}
	s.shapes[ns.Name] = ns
}

// Get returns the node shape with the given name, or nil.
func (s *Schema) Get(name string) *NodeShape { return s.shapes[name] }

// Len returns the number of node shapes.
func (s *Schema) Len() int { return len(s.order) }

// Shapes returns the node shapes in insertion order.
func (s *Schema) Shapes() []*NodeShape {
	out := make([]*NodeShape, 0, len(s.order))
	for _, n := range s.order {
		out = append(out, s.shapes[n])
	}
	return out
}

// ShapeForClass returns the first node shape targeting the class, or nil.
func (s *Schema) ShapeForClass(class string) *NodeShape {
	for _, n := range s.order {
		if s.shapes[n].TargetClass == class {
			return s.shapes[n]
		}
	}
	return nil
}

// EffectiveProperties returns the shape's property shapes including those
// inherited transitively through Extends, parents first. Inheritance cycles
// are tolerated (each shape contributes once).
func (s *Schema) EffectiveProperties(name string) []*PropertyShape {
	var out []*PropertyShape
	seen := make(map[string]bool)
	var walk func(n string)
	walk = func(n string) {
		if seen[n] {
			return
		}
		seen[n] = true
		ns := s.shapes[n]
		if ns == nil {
			return
		}
		for _, parent := range ns.Extends {
			walk(parent)
		}
		out = append(out, ns.Properties...)
	}
	walk(name)
	return out
}

// PropertyCount returns the total number of property shapes (owned only).
func (s *Schema) PropertyCount() int {
	n := 0
	for _, ns := range s.shapes {
		n += len(ns.Properties)
	}
	return n
}

// Equal reports whether two schemas contain the same shapes with the same
// constraints (order-insensitive for shapes and type alternatives).
func (s *Schema) Equal(o *Schema) bool {
	if s.Len() != o.Len() {
		return false
	}
	for name, a := range s.shapes {
		b := o.shapes[name]
		if b == nil || !shapeEqual(a, b) {
			return false
		}
	}
	return true
}

func shapeEqual(a, b *NodeShape) bool {
	if a.Name != b.Name || a.TargetClass != b.TargetClass {
		return false
	}
	if !stringSetEqual(a.Extends, b.Extends) {
		return false
	}
	if len(a.Properties) != len(b.Properties) {
		return false
	}
	byPath := make(map[string]*PropertyShape, len(b.Properties))
	for _, p := range b.Properties {
		byPath[p.Path] = p
	}
	for _, p := range a.Properties {
		q := byPath[p.Path]
		if q == nil || !propEqual(p, q) {
			return false
		}
	}
	return true
}

func propEqual(a, b *PropertyShape) bool {
	if a.Path != b.Path || a.MinCount != b.MinCount || a.MaxCount != b.MaxCount {
		return false
	}
	if len(a.Types) != len(b.Types) {
		return false
	}
	set := make(map[TypeRef]bool, len(b.Types))
	for _, t := range b.Types {
		set[t] = true
	}
	for _, t := range a.Types {
		if !set[t] {
			return false
		}
	}
	return true
}

func stringSetEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	as, bs := append([]string(nil), a...), append([]string(nil), b...)
	sort.Strings(as)
	sort.Strings(bs)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

// String renders a compact description of the schema for diagnostics.
func (s *Schema) String() string {
	var b strings.Builder
	for _, ns := range s.Shapes() {
		fmt.Fprintf(&b, "%s targetClass=%s extends=%v\n", ns.Name, ns.TargetClass, ns.Extends)
		for _, p := range ns.Properties {
			max := "∞"
			if p.MaxCount != Unbounded {
				max = fmt.Sprint(p.MaxCount)
			}
			fmt.Fprintf(&b, "  %s %v [%d..%s] (%s)\n", p.Path, p.Types, p.MinCount, max, p.Category())
		}
	}
	return b.String()
}
