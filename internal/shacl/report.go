package shacl

import (
	"fmt"
	"sort"
	"strings"
)

// ViolationReport aggregates a validation pass into per-shape counts along
// the constraint families of ViolationKind. It is the data-vs-shapes summary
// the lenient pipeline prints and exports: full violation lists scale with
// the dirtiness of the data, while the report stays bounded by the schema
// size.
type ViolationReport struct {
	// ByShape maps shape name → violation kind → count.
	ByShape map[string]map[ViolationKind]int `json:"by_shape"`
	// Total is the overall violation count.
	Total int `json:"total"`
}

// NewViolationReport builds the aggregate report for a violation list.
func NewViolationReport(vs []Violation) *ViolationReport {
	r := &ViolationReport{ByShape: make(map[string]map[ViolationKind]int)}
	for _, v := range vs {
		r.Add(v)
	}
	return r
}

// Add folds one violation into the report.
func (r *ViolationReport) Add(v Violation) {
	m := r.ByShape[v.Shape]
	if m == nil {
		m = make(map[ViolationKind]int)
		r.ByShape[v.Shape] = m
	}
	m[v.Kind]++
	r.Total++
}

// Count returns the number of violations of a kind for a shape.
func (r *ViolationReport) Count(shape string, kind ViolationKind) int {
	return r.ByShape[shape][kind]
}

// KindTotal returns the number of violations of a kind across all shapes.
func (r *ViolationReport) KindTotal(kind ViolationKind) int {
	n := 0
	for _, m := range r.ByShape {
		n += m[kind]
	}
	return n
}

// String renders the report as one line per shape, shapes sorted by name and
// kinds in constraint-family order, e.g.:
//
//	http://…/shapes#Person: 2 cardinality, 1 datatype
func (r *ViolationReport) String() string {
	if r == nil || r.Total == 0 {
		return "no violations"
	}
	shapes := make([]string, 0, len(r.ByShape))
	for s := range r.ByShape {
		shapes = append(shapes, s)
	}
	sort.Strings(shapes)
	var b strings.Builder
	fmt.Fprintf(&b, "%d violation(s)", r.Total)
	for _, s := range shapes {
		var parts []string
		for _, k := range []ViolationKind{ViolationCardinality, ViolationDatatype, ViolationClass, ViolationNodeKind} {
			if n := r.ByShape[s][k]; n > 0 {
				parts = append(parts, fmt.Sprintf("%d %s", n, k))
			}
		}
		fmt.Fprintf(&b, "\n  %s: %s", s, strings.Join(parts, ", "))
	}
	return b.String()
}
