package shacl

import (
	"context"
	"errors"
	"strings"
	"testing"

	"github.com/s3pg/s3pg/internal/rdf"
)

func reportFixture() []Violation {
	e := rdf.NewIRI("http://e.org/x")
	return []Violation{
		{e, "shape:B", "p", ViolationCardinality, "too few"},
		{e, "shape:A", "p", ViolationCardinality, "too few"},
		{e, "shape:A", "p", ViolationCardinality, "too many"},
		{e, "shape:A", "q", ViolationDatatype, "wrong datatype"},
		{e, "shape:A", "r", ViolationNodeKind, "literal where resource required"},
		{e, "shape:B", "s", ViolationClass, "not an instance"},
	}
}

func TestViolationReportCounts(t *testing.T) {
	r := NewViolationReport(reportFixture())
	if r.Total != 6 {
		t.Fatalf("Total = %d, want 6", r.Total)
	}
	cases := []struct {
		shape string
		kind  ViolationKind
		want  int
	}{
		{"shape:A", ViolationCardinality, 2},
		{"shape:A", ViolationDatatype, 1},
		{"shape:A", ViolationNodeKind, 1},
		{"shape:A", ViolationClass, 0},
		{"shape:B", ViolationCardinality, 1},
		{"shape:B", ViolationClass, 1},
		{"shape:missing", ViolationDatatype, 0},
	}
	for _, tc := range cases {
		if got := r.Count(tc.shape, tc.kind); got != tc.want {
			t.Errorf("Count(%s, %s) = %d, want %d", tc.shape, tc.kind, got, tc.want)
		}
	}
	if got := r.KindTotal(ViolationCardinality); got != 3 {
		t.Errorf("KindTotal(cardinality) = %d, want 3", got)
	}
}

func TestViolationReportString(t *testing.T) {
	var nilReport *ViolationReport
	if got := nilReport.String(); got != "no violations" {
		t.Errorf("nil report String = %q", got)
	}
	if got := NewViolationReport(nil).String(); got != "no violations" {
		t.Errorf("empty report String = %q", got)
	}
	s := NewViolationReport(reportFixture()).String()
	if !strings.HasPrefix(s, "6 violation(s)") {
		t.Errorf("String lacks the total: %q", s)
	}
	// Shapes sorted by name, kinds in constraint-family order.
	if !strings.Contains(s, "shape:A: 2 cardinality, 1 datatype, 1 nodeKind") {
		t.Errorf("String lacks the shape:A line: %q", s)
	}
	if !strings.Contains(s, "shape:B: 1 cardinality, 1 class") {
		t.Errorf("String lacks the shape:B line: %q", s)
	}
	if strings.Index(s, "shape:A") > strings.Index(s, "shape:B") {
		t.Errorf("shapes not sorted: %q", s)
	}
}

func TestViolationKindString(t *testing.T) {
	want := map[ViolationKind]string{
		ViolationCardinality: "cardinality",
		ViolationDatatype:    "datatype",
		ViolationClass:       "class",
		ViolationNodeKind:    "nodeKind",
		ViolationKind(99):    "ViolationKind(99)",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
}

// TestValidateViolationKinds checks the classifier end to end: a graph
// engineered to break each constraint family yields violations of the
// matching kinds.
func TestValidateViolationKinds(t *testing.T) {
	sg := NewSchema()
	ns := &NodeShape{Name: "shape:T", TargetClass: "http://e.org/T"}
	ns.Properties = []*PropertyShape{
		{Path: "http://e.org/name", Types: []TypeRef{LiteralRef("http://www.w3.org/2001/XMLSchema#string")}, MinCount: 1, MaxCount: 1},
		{Path: "http://e.org/ref", Types: []TypeRef{ClassRef("http://e.org/U")}, MaxCount: Unbounded},
	}
	sg.Add(ns)

	g := rdf.NewGraph()
	x := rdf.NewIRI("http://e.org/x")
	g.Add(rdf.NewTriple(x, rdf.A, rdf.NewIRI("http://e.org/T")))
	// Cardinality: two names where [1..1] is required; datatype: one is an int.
	g.Add(rdf.NewTriple(x, rdf.NewIRI("http://e.org/name"), rdf.NewLiteral("ok")))
	g.Add(rdf.NewTriple(x, rdf.NewIRI("http://e.org/name"), rdf.NewTypedLiteral("7", "http://www.w3.org/2001/XMLSchema#integer")))
	// Class: object typed U is required but y is untyped.
	g.Add(rdf.NewTriple(x, rdf.NewIRI("http://e.org/ref"), rdf.NewIRI("http://e.org/y")))
	// NodeKind: a literal where only resources are admitted.
	g.Add(rdf.NewTriple(x, rdf.NewIRI("http://e.org/ref"), rdf.NewLiteral("not a resource")))

	r := NewViolationReport(Validate(g, sg))
	if r.Count("shape:T", ViolationCardinality) != 1 {
		t.Errorf("cardinality count = %d, want 1\n%s", r.Count("shape:T", ViolationCardinality), r)
	}
	if r.Count("shape:T", ViolationDatatype) != 1 {
		t.Errorf("datatype count = %d, want 1\n%s", r.Count("shape:T", ViolationDatatype), r)
	}
	if r.Count("shape:T", ViolationClass) != 1 {
		t.Errorf("class count = %d, want 1\n%s", r.Count("shape:T", ViolationClass), r)
	}
	if r.Count("shape:T", ViolationNodeKind) != 1 {
		t.Errorf("nodeKind count = %d, want 1\n%s", r.Count("shape:T", ViolationNodeKind), r)
	}
}

func TestValidateContextCancel(t *testing.T) {
	sg := NewSchema()
	sg.Add(&NodeShape{Name: "shape:T", TargetClass: "http://e.org/T"})
	g := rdf.NewGraph()
	g.Add(rdf.NewTriple(rdf.NewIRI("http://e.org/x"), rdf.A, rdf.NewIRI("http://e.org/T")))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ValidateContext(ctx, g, sg); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
