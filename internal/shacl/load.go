package shacl

import (
	"fmt"
	"strconv"

	"github.com/s3pg/s3pg/internal/rdf"
)

// FromGraph loads a shape schema from an RDF graph containing SHACL
// declarations (the shape documents of Figure 4). It recognizes the core
// constraint components of the Figure 3 taxonomy: sh:targetClass, sh:node
// (inheritance), sh:property with sh:path, sh:datatype, sh:class, sh:node
// (shape reference), sh:nodeKind, sh:minCount, sh:maxCount, and sh:or over
// a list of alternatives.
func FromGraph(g *rdf.Graph) (*Schema, error) {
	s := NewSchema()
	nodeShapeT := rdf.NewIRI(rdf.SHNodeShape)
	shapeNames := g.InstancesOf(nodeShapeT)
	declared := make(map[string]bool, len(shapeNames))
	for _, sn := range shapeNames {
		if sn.IsIRI() {
			declared[sn.Value] = true
		}
	}
	for _, sn := range shapeNames {
		if !sn.IsIRI() {
			return nil, fmt.Errorf("shacl: node shape %v must be an IRI", sn)
		}
		ns, err := loadNodeShape(g, sn, declared)
		if err != nil {
			return nil, err
		}
		s.Add(ns)
	}
	return s, nil
}

func loadNodeShape(g *rdf.Graph, name rdf.Term, declared map[string]bool) (*NodeShape, error) {
	ns := &NodeShape{Name: name.Value}
	if tc := g.Objects(name, rdf.NewIRI(rdf.SHTargetClass)); len(tc) > 0 {
		if !tc[0].IsIRI() {
			return nil, fmt.Errorf("shacl: %s: sh:targetClass must be an IRI", ns.Name)
		}
		ns.TargetClass = tc[0].Value
	}
	for _, ext := range g.Objects(name, rdf.NewIRI(rdf.SHNode)) {
		if !ext.IsIRI() {
			return nil, fmt.Errorf("shacl: %s: sh:node must be an IRI", ns.Name)
		}
		ns.Extends = append(ns.Extends, ext.Value)
	}
	for _, pnode := range g.Objects(name, rdf.NewIRI(rdf.SHProperty)) {
		ps, err := loadPropertyShape(g, pnode, declared)
		if err != nil {
			return nil, fmt.Errorf("shacl: %s: %w", ns.Name, err)
		}
		ns.Properties = append(ns.Properties, ps)
	}
	return ns, nil
}

func loadPropertyShape(g *rdf.Graph, node rdf.Term, declared map[string]bool) (*PropertyShape, error) {
	paths := g.Objects(node, rdf.NewIRI(rdf.SHPath))
	if len(paths) != 1 || !paths[0].IsIRI() {
		return nil, fmt.Errorf("property shape %v: exactly one IRI sh:path required, got %v", node, paths)
	}
	ps := &PropertyShape{Path: paths[0].Value, MinCount: 0, MaxCount: Unbounded}

	if mc, ok, err := intObject(g, node, rdf.SHMinCount); err != nil {
		return nil, err
	} else if ok {
		ps.MinCount = mc
	}
	if mc, ok, err := intObject(g, node, rdf.SHMaxCount); err != nil {
		return nil, err
	} else if ok {
		ps.MaxCount = mc
	}
	if ps.MaxCount != Unbounded && ps.MinCount > ps.MaxCount {
		return nil, fmt.Errorf("property shape for %s: minCount %d > maxCount %d", ps.Path, ps.MinCount, ps.MaxCount)
	}

	// Direct (non-disjunctive) type constraints.
	direct, err := typeRefAt(g, node, declared)
	if err != nil {
		return nil, fmt.Errorf("property shape for %s: %w", ps.Path, err)
	}
	if direct != nil {
		ps.Types = append(ps.Types, *direct)
	}

	// sh:or over a list of alternatives.
	for _, orHead := range g.Objects(node, rdf.NewIRI(rdf.SHOr)) {
		alts, err := listItems(g, orHead)
		if err != nil {
			return nil, fmt.Errorf("property shape for %s: sh:or: %w", ps.Path, err)
		}
		for _, alt := range alts {
			ref, err := typeRefAt(g, alt, declared)
			if err != nil {
				return nil, fmt.Errorf("property shape for %s: sh:or alternative: %w", ps.Path, err)
			}
			if ref == nil {
				return nil, fmt.Errorf("property shape for %s: sh:or alternative %v carries no type constraint", ps.Path, alt)
			}
			ps.Types = append(ps.Types, *ref)
		}
	}
	if len(ps.Types) == 0 {
		return nil, fmt.Errorf("property shape for %s: no type constraint (need sh:datatype, sh:class, sh:node, or sh:or)", ps.Path)
	}
	return ps, nil
}

// typeRefAt reads a single type constraint attached directly to node:
// sh:datatype (literal), sh:class (class), or sh:node (shape reference or —
// when the target is not a declared shape — treated as a class). Returns nil
// when node carries none.
func typeRefAt(g *rdf.Graph, node rdf.Term, declared map[string]bool) (*TypeRef, error) {
	dts := g.Objects(node, rdf.NewIRI(rdf.SHDatatype))
	classes := g.Objects(node, rdf.NewIRI(rdf.SHClass))
	shapes := g.Objects(node, rdf.NewIRI(rdf.SHNode))
	set := 0
	for _, l := range [][]rdf.Term{dts, classes, shapes} {
		if len(l) > 0 {
			set++
		}
	}
	if set > 1 {
		return nil, fmt.Errorf("%v: at most one of sh:datatype/sh:class/sh:node allowed per alternative", node)
	}
	switch {
	case len(dts) == 1 && dts[0].IsIRI():
		return &TypeRef{Datatype: dts[0].Value}, nil
	case len(classes) == 1 && classes[0].IsIRI():
		return &TypeRef{Class: classes[0].Value}, nil
	case len(shapes) == 1 && shapes[0].IsIRI():
		// Only treat as a shape reference on property-shape alternatives when
		// the IRI is a declared node shape; otherwise it is a class.
		if declared[shapes[0].Value] {
			return &TypeRef{Shape: shapes[0].Value}, nil
		}
		return &TypeRef{Class: shapes[0].Value}, nil
	case set == 0:
		return nil, nil
	default:
		return nil, fmt.Errorf("%v: malformed type constraint", node)
	}
}

// intObject reads a single integer-valued object for (s, pred).
func intObject(g *rdf.Graph, s rdf.Term, pred string) (int, bool, error) {
	objs := g.Objects(s, rdf.NewIRI(pred))
	if len(objs) == 0 {
		return 0, false, nil
	}
	if len(objs) > 1 {
		return 0, false, fmt.Errorf("%v: multiple %s values", s, pred)
	}
	if !objs[0].IsLiteral() {
		return 0, false, fmt.Errorf("%v: %s must be a literal", s, pred)
	}
	n, err := strconv.Atoi(objs[0].Value)
	if err != nil || n < 0 {
		return 0, false, fmt.Errorf("%v: %s must be a non-negative integer, got %q", s, pred, objs[0].Value)
	}
	return n, true, nil
}

// listItems walks an RDF collection from its head cell.
func listItems(g *rdf.Graph, head rdf.Term) ([]rdf.Term, error) {
	first, rest, nilT := rdf.NewIRI(rdf.RDFFirst), rdf.NewIRI(rdf.RDFRest), rdf.NewIRI(rdf.RDFNil)
	var items []rdf.Term
	seen := make(map[rdf.Term]bool)
	for head != nilT {
		if seen[head] {
			return nil, fmt.Errorf("cyclic RDF list at %v", head)
		}
		seen[head] = true
		f := g.Objects(head, first)
		if len(f) != 1 {
			return nil, fmt.Errorf("list cell %v has %d rdf:first values", head, len(f))
		}
		items = append(items, f[0])
		r := g.Objects(head, rest)
		if len(r) != 1 {
			return nil, fmt.Errorf("list cell %v has %d rdf:rest values", head, len(r))
		}
		head = r[0]
	}
	return items, nil
}

// ToGraph serializes the schema back into an RDF graph using the same SHACL
// vocabulary accepted by FromGraph, so that FromGraph(ToGraph(s)) ≡ s.
// Property shapes and sh:or alternatives become fresh blank nodes.
func ToGraph(s *Schema) *rdf.Graph {
	g := rdf.NewGraph()
	blank := 0
	fresh := func() rdf.Term {
		blank++
		return rdf.NewBlank(fmt.Sprintf("ps%d", blank))
	}
	add := func(s, p, o rdf.Term) { g.Add(rdf.NewTriple(s, p, o)) }
	intLit := func(n int) rdf.Term { return rdf.NewTypedLiteral(strconv.Itoa(n), rdf.XSDInteger) }

	for _, ns := range s.Shapes() {
		name := rdf.NewIRI(ns.Name)
		add(name, rdf.A, rdf.NewIRI(rdf.SHNodeShape))
		if ns.TargetClass != "" {
			add(name, rdf.NewIRI(rdf.SHTargetClass), rdf.NewIRI(ns.TargetClass))
		}
		for _, ext := range ns.Extends {
			add(name, rdf.NewIRI(rdf.SHNode), rdf.NewIRI(ext))
		}
		for _, ps := range ns.Properties {
			pnode := fresh()
			add(name, rdf.NewIRI(rdf.SHProperty), pnode)
			add(pnode, rdf.NewIRI(rdf.SHPath), rdf.NewIRI(ps.Path))
			if ps.MinCount > 0 {
				add(pnode, rdf.NewIRI(rdf.SHMinCount), intLit(ps.MinCount))
			}
			if ps.MaxCount != Unbounded {
				add(pnode, rdf.NewIRI(rdf.SHMaxCount), intLit(ps.MaxCount))
			}
			writeRef := func(target rdf.Term, ref TypeRef) {
				switch {
				case ref.Datatype != "":
					add(target, rdf.NewIRI(rdf.SHNodeKindProp), rdf.NewIRI(rdf.SHLiteralKind))
					add(target, rdf.NewIRI(rdf.SHDatatype), rdf.NewIRI(ref.Datatype))
				case ref.Class != "":
					add(target, rdf.NewIRI(rdf.SHNodeKindProp), rdf.NewIRI(rdf.SHIRIKind))
					add(target, rdf.NewIRI(rdf.SHClass), rdf.NewIRI(ref.Class))
				case ref.Shape != "":
					add(target, rdf.NewIRI(rdf.SHNodeKindProp), rdf.NewIRI(rdf.SHIRIKind))
					add(target, rdf.NewIRI(rdf.SHNode), rdf.NewIRI(ref.Shape))
				}
			}
			if len(ps.Types) == 1 {
				writeRef(pnode, ps.Types[0])
				continue
			}
			// Multiple alternatives: sh:or over a fresh RDF list.
			cells := make([]rdf.Term, len(ps.Types))
			for i := range ps.Types {
				cells[i] = fresh()
			}
			add(pnode, rdf.NewIRI(rdf.SHOr), cells[0])
			for i, ref := range ps.Types {
				alt := fresh()
				add(cells[i], rdf.NewIRI(rdf.RDFFirst), alt)
				next := rdf.NewIRI(rdf.RDFNil)
				if i+1 < len(cells) {
					next = cells[i+1]
				}
				add(cells[i], rdf.NewIRI(rdf.RDFRest), next)
				writeRef(alt, ref)
			}
		}
	}
	return g
}
