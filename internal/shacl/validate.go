package shacl

import (
	"context"
	"fmt"

	"github.com/s3pg/s3pg/internal/obs"
	"github.com/s3pg/s3pg/internal/rdf"
)

// cViolations counts every violation found across validation runs
// (obs.Default registry), so metrics snapshots expose how dirty the
// processed data was.
var cViolations = obs.Default.Counter("shacl.violations")

// ViolationKind classifies a conformance failure by the constraint it
// breaks; ViolationReport aggregates per-shape counts along these kinds.
type ViolationKind uint8

// The violation kinds, mirroring the constraint components of Definition
// 2.2: cardinality bounds, literal datatype membership, class membership,
// and node-kind mismatches (a literal where a resource is required or vice
// versa).
const (
	ViolationCardinality ViolationKind = iota + 1
	ViolationDatatype
	ViolationClass
	ViolationNodeKind
)

// String returns the constraint family name.
func (k ViolationKind) String() string {
	switch k {
	case ViolationCardinality:
		return "cardinality"
	case ViolationDatatype:
		return "datatype"
	case ViolationClass:
		return "class"
	case ViolationNodeKind:
		return "nodeKind"
	default:
		return fmt.Sprintf("ViolationKind(%d)", uint8(k))
	}
}

// Violation describes one conformance failure found by Validate.
type Violation struct {
	Entity  rdf.Term
	Shape   string
	Path    string
	Kind    ViolationKind
	Message string
}

// String renders the violation for diagnostics.
func (v Violation) String() string {
	return fmt.Sprintf("%v ⊭ %s (path %s): %s: %s", v.Entity, v.Shape, v.Path, v.Kind, v.Message)
}

// Validator checks graph conformance against a shape schema, implementing
// the shape semantics of Definition 2.3.
type Validator struct {
	g *rdf.Graph
	s *Schema
	// conformMemo caches recursive conformance checks; entries that are in
	// progress are optimistically true, which yields the standard greatest-
	// fixpoint reading for cyclic shape references.
	conformMemo map[conformKey]bool
}

type conformKey struct {
	entity rdf.Term
	shape  string
}

// NewValidator returns a validator for the graph/schema pair.
func NewValidator(g *rdf.Graph, s *Schema) *Validator {
	return &Validator{g: g, s: s, conformMemo: make(map[conformKey]bool)}
}

// Validate checks every target entity against its node shapes and returns
// all violations (empty means G ⊨ S_G).
func Validate(g *rdf.Graph, s *Schema) []Violation {
	return NewValidator(g, s).ValidateAll()
}

// ValidateContext is Validate with cancellation: it returns the violations
// found so far together with ctx.Err() when the context ends mid-pass.
func ValidateContext(ctx context.Context, g *rdf.Graph, s *Schema) ([]Violation, error) {
	return NewValidator(g, s).ValidateAllContext(ctx)
}

// Conforms reports whether G ⊨ S_G.
func Conforms(g *rdf.Graph, s *Schema) bool { return len(Validate(g, s)) == 0 }

// ValidateAll checks all node shapes with target classes.
func (v *Validator) ValidateAll() []Violation {
	out, _ := v.ValidateAllContext(context.Background())
	return out
}

// ValidateAllContext checks all node shapes with target classes, checking
// for cancellation between entities. On cancellation the violations found so
// far are returned alongside ctx.Err().
func (v *Validator) ValidateAllContext(ctx context.Context) ([]Violation, error) {
	var out []Violation
	checked := 0
	defer func() { cViolations.Add(int64(len(out))) }()
	for _, ns := range v.s.Shapes() {
		if ns.TargetClass == "" {
			continue
		}
		for _, e := range v.g.InstancesOf(rdf.NewIRI(ns.TargetClass)) {
			if checked%1024 == 0 {
				if err := ctx.Err(); err != nil {
					return out, err
				}
			}
			checked++
			out = append(out, v.ValidateEntity(e, ns.Name)...)
		}
	}
	return out, nil
}

// ValidateEntity checks a single entity against a node shape (including
// inherited property shapes) and returns its violations.
func (v *Validator) ValidateEntity(e rdf.Term, shapeName string) []Violation {
	var out []Violation
	for _, ps := range v.s.EffectiveProperties(shapeName) {
		out = append(out, v.validateProperty(e, shapeName, ps)...)
	}
	return out
}

func (v *Validator) validateProperty(e rdf.Term, shapeName string, ps *PropertyShape) []Violation {
	var out []Violation
	pred := rdf.NewIRI(ps.Path)
	var objects []rdf.Term
	v.g.Match(&e, &pred, nil, func(t rdf.Triple) bool {
		objects = append(objects, t.O)
		return true
	})

	// Cardinality: n ≤ |{⟨e, τ_p, o⟩}| ≤ m.
	if len(objects) < ps.MinCount {
		out = append(out, Violation{e, shapeName, ps.Path, ViolationCardinality,
			fmt.Sprintf("cardinality %d below minCount %d", len(objects), ps.MinCount)})
	}
	if ps.MaxCount != Unbounded && len(objects) > ps.MaxCount {
		out = append(out, Violation{e, shapeName, ps.Path, ViolationCardinality,
			fmt.Sprintf("cardinality %d above maxCount %d", len(objects), ps.MaxCount)})
	}

	// Type constraints: every value must satisfy at least one alternative.
	for _, o := range objects {
		if !v.valueMatches(o, ps.Types) {
			out = append(out, Violation{e, shapeName, ps.Path, typeViolationKind(o, ps.Types),
				fmt.Sprintf("value %v matches none of %v", o, ps.Types)})
		}
	}
	return out
}

// typeViolationKind classifies a failed type constraint: a value of the
// right node kind but the wrong datatype/class is a datatype/class
// violation; a value of the wrong node kind entirely (literal where only
// resources are admitted, or vice versa) is a nodeKind violation.
func typeViolationKind(o rdf.Term, types []TypeRef) ViolationKind {
	if o.IsLiteral() {
		for _, ref := range types {
			if ref.IsLiteral() {
				return ViolationDatatype
			}
		}
		return ViolationNodeKind
	}
	for _, ref := range types {
		if !ref.IsLiteral() {
			return ViolationClass
		}
	}
	return ViolationNodeKind
}

// valueMatches reports whether the object satisfies at least one alternative.
func (v *Validator) valueMatches(o rdf.Term, types []TypeRef) bool {
	for _, ref := range types {
		if v.valueMatchesRef(o, ref) {
			return true
		}
	}
	return false
}

func (v *Validator) valueMatchesRef(o rdf.Term, ref TypeRef) bool {
	switch {
	case ref.Datatype != "":
		return o.IsLiteral() && o.DatatypeIRI() == ref.Datatype
	case ref.Class != "":
		if !o.IsResource() || !v.g.IsInstanceOf(o, rdf.NewIRI(ref.Class)) {
			return false
		}
		// "if ∃ S_t ∈ S_G, o ⊨_G S_t": when a shape targets the class, the
		// value must also conform to it.
		if ns := v.s.ShapeForClass(ref.Class); ns != nil {
			return v.entityConforms(o, ns.Name)
		}
		return true
	case ref.Shape != "":
		return o.IsResource() && v.entityConforms(o, ref.Shape)
	default:
		return true
	}
}

// entityConforms reports whether the entity satisfies every property shape
// of the named node shape, with memoization that treats in-progress checks
// as conforming (greatest fixpoint for cyclic shapes).
func (v *Validator) entityConforms(e rdf.Term, shapeName string) bool {
	key := conformKey{e, shapeName}
	if got, ok := v.conformMemo[key]; ok {
		return got
	}
	v.conformMemo[key] = true // optimistic, handles cycles
	ok := len(v.ValidateEntity(e, shapeName)) == 0
	v.conformMemo[key] = ok
	return ok
}
