package shacl

import (
	"fmt"

	"github.com/s3pg/s3pg/internal/rdf"
)

// Violation describes one conformance failure found by Validate.
type Violation struct {
	Entity  rdf.Term
	Shape   string
	Path    string
	Message string
}

// String renders the violation for diagnostics.
func (v Violation) String() string {
	return fmt.Sprintf("%v ⊭ %s (path %s): %s", v.Entity, v.Shape, v.Path, v.Message)
}

// Validator checks graph conformance against a shape schema, implementing
// the shape semantics of Definition 2.3.
type Validator struct {
	g *rdf.Graph
	s *Schema
	// conformMemo caches recursive conformance checks; entries that are in
	// progress are optimistically true, which yields the standard greatest-
	// fixpoint reading for cyclic shape references.
	conformMemo map[conformKey]bool
}

type conformKey struct {
	entity rdf.Term
	shape  string
}

// NewValidator returns a validator for the graph/schema pair.
func NewValidator(g *rdf.Graph, s *Schema) *Validator {
	return &Validator{g: g, s: s, conformMemo: make(map[conformKey]bool)}
}

// Validate checks every target entity against its node shapes and returns
// all violations (empty means G ⊨ S_G).
func Validate(g *rdf.Graph, s *Schema) []Violation {
	return NewValidator(g, s).ValidateAll()
}

// Conforms reports whether G ⊨ S_G.
func Conforms(g *rdf.Graph, s *Schema) bool { return len(Validate(g, s)) == 0 }

// ValidateAll checks all node shapes with target classes.
func (v *Validator) ValidateAll() []Violation {
	var out []Violation
	for _, ns := range v.s.Shapes() {
		if ns.TargetClass == "" {
			continue
		}
		for _, e := range v.g.InstancesOf(rdf.NewIRI(ns.TargetClass)) {
			out = append(out, v.ValidateEntity(e, ns.Name)...)
		}
	}
	return out
}

// ValidateEntity checks a single entity against a node shape (including
// inherited property shapes) and returns its violations.
func (v *Validator) ValidateEntity(e rdf.Term, shapeName string) []Violation {
	var out []Violation
	for _, ps := range v.s.EffectiveProperties(shapeName) {
		out = append(out, v.validateProperty(e, shapeName, ps)...)
	}
	return out
}

func (v *Validator) validateProperty(e rdf.Term, shapeName string, ps *PropertyShape) []Violation {
	var out []Violation
	pred := rdf.NewIRI(ps.Path)
	var objects []rdf.Term
	v.g.Match(&e, &pred, nil, func(t rdf.Triple) bool {
		objects = append(objects, t.O)
		return true
	})

	// Cardinality: n ≤ |{⟨e, τ_p, o⟩}| ≤ m.
	if len(objects) < ps.MinCount {
		out = append(out, Violation{e, shapeName, ps.Path,
			fmt.Sprintf("cardinality %d below minCount %d", len(objects), ps.MinCount)})
	}
	if ps.MaxCount != Unbounded && len(objects) > ps.MaxCount {
		out = append(out, Violation{e, shapeName, ps.Path,
			fmt.Sprintf("cardinality %d above maxCount %d", len(objects), ps.MaxCount)})
	}

	// Type constraints: every value must satisfy at least one alternative.
	for _, o := range objects {
		if !v.valueMatches(o, ps.Types) {
			out = append(out, Violation{e, shapeName, ps.Path,
				fmt.Sprintf("value %v matches none of %v", o, ps.Types)})
		}
	}
	return out
}

// valueMatches reports whether the object satisfies at least one alternative.
func (v *Validator) valueMatches(o rdf.Term, types []TypeRef) bool {
	for _, ref := range types {
		if v.valueMatchesRef(o, ref) {
			return true
		}
	}
	return false
}

func (v *Validator) valueMatchesRef(o rdf.Term, ref TypeRef) bool {
	switch {
	case ref.Datatype != "":
		return o.IsLiteral() && o.DatatypeIRI() == ref.Datatype
	case ref.Class != "":
		if !o.IsResource() || !v.g.IsInstanceOf(o, rdf.NewIRI(ref.Class)) {
			return false
		}
		// "if ∃ S_t ∈ S_G, o ⊨_G S_t": when a shape targets the class, the
		// value must also conform to it.
		if ns := v.s.ShapeForClass(ref.Class); ns != nil {
			return v.entityConforms(o, ns.Name)
		}
		return true
	case ref.Shape != "":
		return o.IsResource() && v.entityConforms(o, ref.Shape)
	default:
		return true
	}
}

// entityConforms reports whether the entity satisfies every property shape
// of the named node shape, with memoization that treats in-progress checks
// as conforming (greatest fixpoint for cyclic shapes).
func (v *Validator) entityConforms(e rdf.Term, shapeName string) bool {
	key := conformKey{e, shapeName}
	if got, ok := v.conformMemo[key]; ok {
		return got
	}
	v.conformMemo[key] = true // optimistic, handles cycles
	ok := len(v.ValidateEntity(e, shapeName)) == 0
	v.conformMemo[key] = ok
	return ok
}
