package stats_test

import (
	"reflect"
	"testing"

	"github.com/s3pg/s3pg/internal/core"
	"github.com/s3pg/s3pg/internal/fixtures"
	"github.com/s3pg/s3pg/internal/obs"
	"github.com/s3pg/s3pg/internal/stats"
)

func TestComputeDataset(t *testing.T) {
	g := fixtures.UniversityGraph()
	d := stats.ComputeDataset(g)
	if d.Triples != g.Len() {
		t.Fatalf("triples = %d, want %d", d.Triples, g.Len())
	}
	if d.Instances != 5 { // bob, alice, DB, CS, AAU
		t.Fatalf("instances = %d", d.Instances)
	}
	if d.Classes != 9 {
		t.Fatalf("classes = %d", d.Classes)
	}
	if d.Subjects != 5 || d.Objects == 0 || d.Literals == 0 {
		t.Fatalf("stats = %+v", d)
	}
	if d.SizeBytes <= 0 {
		t.Fatalf("size = %d", d.SizeBytes)
	}
}

// TestComputeDatasetStreamingMatches pins the single-pass variant to the
// multi-pass reference implementation, and checks the scan counter advanced.
func TestComputeDatasetStreamingMatches(t *testing.T) {
	g := fixtures.UniversityGraph()
	before := obs.Default.Counter("stats.dataset.triples_scanned").Value()
	want := stats.ComputeDataset(g)
	got := stats.ComputeDatasetStreaming(g)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("streaming stats diverge:\n got %+v\nwant %+v", got, want)
	}
	after := obs.Default.Counter("stats.dataset.triples_scanned").Value()
	if after-before != int64(g.Len()) {
		t.Fatalf("scan counter advanced by %d, want %d", after-before, g.Len())
	}
}

func TestComputeShapes(t *testing.T) {
	s := stats.ComputeShapes(fixtures.UniversityShapes())
	if s.NodeShapes != 9 {
		t.Fatalf("node shapes = %d", s.NodeShapes)
	}
	// name×4 (Person, Course, Department, University), regNo, worksFor,
	// partOf, dob, advisedBy, takesCourse = 10 property shapes.
	if s.PropertyShapes != 10 {
		t.Fatalf("property shapes = %d", s.PropertyShapes)
	}
	// Single-type literals: name×4 + regNo; non-literals: worksFor + partOf.
	if s.SingleTypeLiteral != 5 || s.SingleTypeNonLiteral != 2 {
		t.Fatalf("single-type stats = %+v", s)
	}
	// dob is homo-literal, advisedBy homo-non-literal, takesCourse hetero.
	if s.MultiTypeHomoLit != 1 || s.MultiTypeHomoNonLit != 1 || s.MultiTypeHetero != 1 {
		t.Fatalf("multi-type stats = %+v", s)
	}
	if s.SingleType+s.MultiType != s.PropertyShapes {
		t.Fatalf("category sums inconsistent: %+v", s)
	}
}

func TestComputePG(t *testing.T) {
	g := fixtures.UniversityGraph()
	store, _, err := core.Transform(g, fixtures.UniversityShapes(), core.Parsimonious)
	if err != nil {
		t.Fatal(err)
	}
	p := stats.ComputePG(store)
	if p.Nodes != store.NumNodes() || p.Edges != store.NumEdges() || p.RelTypes != store.RelTypes() {
		t.Fatalf("pg stats = %+v", p)
	}
	if p.Nodes == 0 || p.Edges == 0 || p.RelTypes == 0 {
		t.Fatalf("pg stats empty: %+v", p)
	}
}
