// Package stats computes the dataset, shape, and transformed-graph
// statistics the paper reports in Tables 2, 3, and 5.
package stats

import (
	"github.com/s3pg/s3pg/internal/obs"
	"github.com/s3pg/s3pg/internal/pg"
	"github.com/s3pg/s3pg/internal/rdf"
	"github.com/s3pg/s3pg/internal/shacl"
)

// cScanned counts triples scanned by the streaming statistics pass.
var cScanned = obs.Default.Counter("stats.dataset.triples_scanned")

// Dataset mirrors one column of Table 2.
type Dataset struct {
	Triples    int
	Objects    int // distinct object terms
	Subjects   int // distinct subject terms
	Literals   int // distinct literal objects
	Instances  int // distinct subjects of rdf:type
	Classes    int
	Properties int
	SizeBytes  int64 // N-Triples serialization size
}

// ComputeDataset derives Table 2 statistics for a graph.
func ComputeDataset(g *rdf.Graph) Dataset {
	var d Dataset
	d.Triples = g.Len()
	subjects := make(map[rdf.Term]struct{})
	objects := make(map[rdf.Term]struct{})
	literals := make(map[rdf.Term]struct{})
	instances := make(map[rdf.Term]struct{})
	preds := make(map[rdf.Term]struct{})
	g.ForEach(func(t rdf.Triple) bool {
		subjects[t.S] = struct{}{}
		objects[t.O] = struct{}{}
		preds[t.P] = struct{}{}
		if t.O.IsLiteral() {
			literals[t.O] = struct{}{}
		}
		if t.P == rdf.A {
			instances[t.S] = struct{}{}
		}
		// N-Triples line estimate: three terms, separators, dot, newline.
		d.SizeBytes += int64(len(t.S.Value) + len(t.P.Value) + len(t.O.Value) + len(t.O.Datatype) + 12)
		return true
	})
	d.Subjects = len(subjects)
	d.Objects = len(objects)
	d.Literals = len(literals)
	d.Instances = len(instances)
	d.Classes = len(g.Classes())
	d.Properties = len(preds)
	return d
}

// ComputeDatasetStreaming derives the same Table 2 statistics as
// ComputeDataset in a single ForEach pass: the class census (objects of
// rdf:type plus both ends of rdfs:subClassOf, the definition Graph.Classes
// uses) folds into the main scan instead of re-matching the graph, and every
// scanned triple increments the "stats.dataset.triples_scanned" obs counter.
func ComputeDatasetStreaming(g *rdf.Graph) Dataset {
	var d Dataset
	d.Triples = g.Len()
	subjects := make(map[rdf.Term]struct{})
	objects := make(map[rdf.Term]struct{})
	literals := make(map[rdf.Term]struct{})
	instances := make(map[rdf.Term]struct{})
	preds := make(map[rdf.Term]struct{})
	classes := make(map[rdf.Term]struct{})
	subClassOf := rdf.NewIRI(rdf.RDFSSubClassOf)
	scanned := int64(0)
	g.ForEach(func(t rdf.Triple) bool {
		scanned++
		subjects[t.S] = struct{}{}
		objects[t.O] = struct{}{}
		preds[t.P] = struct{}{}
		if t.O.IsLiteral() {
			literals[t.O] = struct{}{}
		}
		switch t.P {
		case rdf.A:
			instances[t.S] = struct{}{}
			if t.O.IsIRI() {
				classes[t.O] = struct{}{}
			}
		case subClassOf:
			if t.S.IsIRI() {
				classes[t.S] = struct{}{}
			}
			if t.O.IsIRI() {
				classes[t.O] = struct{}{}
			}
		}
		d.SizeBytes += int64(len(t.S.Value) + len(t.P.Value) + len(t.O.Value) + len(t.O.Datatype) + 12)
		return true
	})
	cScanned.Add(scanned)
	d.Subjects = len(subjects)
	d.Objects = len(objects)
	d.Literals = len(literals)
	d.Instances = len(instances)
	d.Classes = len(classes)
	d.Properties = len(preds)
	return d
}

// Shapes mirrors one row of Table 3.
type Shapes struct {
	NodeShapes     int
	PropertyShapes int
	SingleType     int
	MultiType      int
	// The five Figure 3 leaf categories.
	SingleTypeLiteral    int
	SingleTypeNonLiteral int
	MultiTypeHomoLit     int
	MultiTypeHomoNonLit  int
	MultiTypeHetero      int
}

// ComputeShapes derives Table 3 statistics for a shape schema.
func ComputeShapes(sg *shacl.Schema) Shapes {
	var s Shapes
	s.NodeShapes = sg.Len()
	for _, ns := range sg.Shapes() {
		for _, ps := range ns.Properties {
			s.PropertyShapes++
			switch ps.Category() {
			case shacl.SingleTypeLiteral:
				s.SingleType++
				s.SingleTypeLiteral++
			case shacl.SingleTypeNonLiteral:
				s.SingleType++
				s.SingleTypeNonLiteral++
			case shacl.MultiTypeHomoLiteral:
				s.MultiType++
				s.MultiTypeHomoLit++
			case shacl.MultiTypeHomoNonLiteral:
				s.MultiType++
				s.MultiTypeHomoNonLit++
			case shacl.MultiTypeHetero:
				s.MultiType++
				s.MultiTypeHetero++
			}
		}
	}
	return s
}

// PG mirrors one row of Table 5.
type PG struct {
	Nodes    int
	Edges    int
	RelTypes int
}

// ComputePG derives Table 5 statistics for a property graph.
func ComputePG(store *pg.Store) PG {
	return PG{
		Nodes:    store.NumNodes(),
		Edges:    store.NumEdges(),
		RelTypes: store.RelTypes(),
	}
}
