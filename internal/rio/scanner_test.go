package rio

import (
	"errors"
	"io"
	"strings"
	"testing"
)

const scannerDoc = "" +
	"<http://x/a> <http://x/p> <http://x/b> .\n" +
	"# a comment line\n" +
	"\n" +
	"<http://x/b> <http://x/p> \"v\" .\n" +
	"<http://x/c> <http://x/p> \"w\"@en .\n" +
	"<http://x/d> <http://x/p> <http://x/a> ." // no trailing newline

// TestScannerOffsets: after every Scan, Offset() must point at the start of
// the next unread line, and resuming from that offset must reproduce the
// remaining statements exactly. This is the property checkpoint resume
// depends on.
func TestScannerOffsets(t *testing.T) {
	sc := NewNTriplesScanner(strings.NewReader(scannerDoc), Options{})
	type pos struct {
		off  int64
		line int
	}
	var stmts []string
	var marks []pos
	for {
		tr, ok, err := sc.Scan()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		stmts = append(stmts, tr.String())
		marks = append(marks, pos{sc.Offset(), sc.Line()})
	}
	if len(stmts) != 4 {
		t.Fatalf("got %d statements, want 4", len(stmts))
	}
	if got := sc.Offset(); got != int64(len(scannerDoc)) {
		t.Fatalf("final offset %d, want %d", got, len(scannerDoc))
	}
	// Every offset is a resumable position: seek there and the suffix of the
	// statement stream matches.
	for i, m := range marks {
		rs := NewNTriplesScanner(strings.NewReader(scannerDoc[m.off:]), Options{})
		rs.SetPos(m.off, m.line)
		var rest []string
		for {
			tr, ok, err := rs.Scan()
			if err != nil {
				t.Fatalf("resume at %d: %v", m.off, err)
			}
			if !ok {
				break
			}
			rest = append(rest, tr.String())
		}
		want := stmts[i+1:]
		if len(rest) != len(want) {
			t.Fatalf("resume after stmt %d: got %d statements, want %d", i, len(rest), len(want))
		}
		for j := range rest {
			if rest[j] != want[j] {
				t.Fatalf("resume after stmt %d: statement %d = %q, want %q", i, j, rest[j], want[j])
			}
		}
		if rs.Offset() != int64(len(scannerDoc)) {
			t.Fatalf("resume after stmt %d: final offset %d, want %d", i, rs.Offset(), len(scannerDoc))
		}
	}
}

// TestScannerLongLine: lines longer than the internal buffer must parse and
// count correctly (no bufio.Scanner token limit).
func TestScannerLongLine(t *testing.T) {
	long := strings.Repeat("x", 200*1024)
	doc := "<http://x/a> <http://x/p> \"" + long + "\" .\n" +
		"<http://x/b> <http://x/p> <http://x/a> .\n"
	sc := NewNTriplesScanner(strings.NewReader(doc), Options{})
	tr, ok, err := sc.Scan()
	if err != nil || !ok {
		t.Fatalf("Scan: %v ok=%v", err, ok)
	}
	if got := tr.O.Value; got != long {
		t.Fatalf("long literal mangled: got %d bytes, want %d", len(got), len(long))
	}
	if _, ok, err = sc.Scan(); err != nil || !ok {
		t.Fatalf("second Scan: %v ok=%v", err, ok)
	}
	if _, ok, _ = sc.Scan(); ok {
		t.Fatal("expected EOF")
	}
	if sc.Offset() != int64(len(doc)) {
		t.Fatalf("offset %d, want %d", sc.Offset(), len(doc))
	}
}

// TestScannerLenient: malformed lines are skipped and tallied, offsets still
// advance over them, and the error budget aborts the scan.
func TestScannerLenient(t *testing.T) {
	doc := "<http://x/a> <http://x/p> <http://x/b> .\n" +
		"this is not a triple\n" +
		"<http://x/b> <http://x/p> <http://x/c> .\n"
	var reported []ParseError
	sc := NewNTriplesScanner(strings.NewReader(doc), Options{
		Lenient: true,
		OnError: func(pe ParseError) { reported = append(reported, pe) },
	})
	n := 0
	for {
		_, ok, err := sc.Scan()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		n++
	}
	if n != 2 || sc.Skipped() != 1 || len(reported) != 1 {
		t.Fatalf("got %d triples, %d skipped, %d reported", n, sc.Skipped(), len(reported))
	}
	if reported[0].Line != 2 {
		t.Fatalf("reported line %d, want 2", reported[0].Line)
	}
	if sc.Offset() != int64(len(doc)) {
		t.Fatalf("offset %d, want %d", sc.Offset(), len(doc))
	}

	// Budget exhaustion hard-stops.
	bad := strings.Repeat("garbage\n", 5)
	sc = NewNTriplesScanner(strings.NewReader(bad), Options{Lenient: true, MaxErrors: 2})
	for {
		_, ok, err := sc.Scan()
		if err != nil {
			if !errors.Is(err, ErrTooManyErrors) {
				t.Fatalf("want ErrTooManyErrors, got %v", err)
			}
			break
		}
		if !ok {
			t.Fatal("scan ended without exceeding the error budget")
		}
	}
}

// TestScannerStrictError: strict mode aborts on the first malformed line with
// a ParseError carrying the right line number.
func TestScannerStrictError(t *testing.T) {
	doc := "<http://x/a> <http://x/p> <http://x/b> .\nnope\n"
	sc := NewNTriplesScanner(strings.NewReader(doc), Options{})
	if _, ok, err := sc.Scan(); err != nil || !ok {
		t.Fatalf("first Scan: %v ok=%v", err, ok)
	}
	_, _, err := sc.Scan()
	var pe *ParseError
	if !errors.As(err, &pe) || pe.Line != 2 {
		t.Fatalf("want ParseError at line 2, got %v", err)
	}
}

// TestScannerReadError: I/O errors from the underlying reader abort the scan
// and are returned verbatim.
func TestScannerReadError(t *testing.T) {
	boom := errors.New("disk on fire")
	r := io.MultiReader(
		strings.NewReader("<http://x/a> <http://x/p> <http://x/b> .\n"),
		&failingReader{err: boom},
	)
	sc := NewNTriplesScanner(r, Options{})
	if _, ok, err := sc.Scan(); err != nil || !ok {
		t.Fatalf("first Scan: %v ok=%v", err, ok)
	}
	if _, _, err := sc.Scan(); !errors.Is(err, boom) {
		t.Fatalf("want underlying read error, got %v", err)
	}
}

type failingReader struct{ err error }

func (f *failingReader) Read([]byte) (int, error) { return 0, f.err }
