package rio

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"time"
	"unicode"
	"unicode/utf8"

	"github.com/s3pg/s3pg/internal/rdf"
)

// ParseTurtle parses a Turtle document into a new graph.
func ParseTurtle(src string) (*rdf.Graph, error) {
	return ParseTurtleWith(context.Background(), src, Options{})
}

// ParseTurtleWith is ParseTurtle with cancellation and fault-tolerance
// control (see ReadTurtleWith).
func ParseTurtleWith(ctx context.Context, src string, opts Options) (*rdf.Graph, error) {
	g := rdf.NewGraph()
	if err := ReadTurtleWith(ctx, strings.NewReader(src), opts, func(t rdf.Triple) error {
		g.Add(t)
		return nil
	}); err != nil {
		return nil, err
	}
	return g, nil
}

// ReadTurtle parses a Turtle document from r, streaming triples to fn.
func ReadTurtle(r io.Reader, fn TripleHandler) error {
	return ReadTurtleWith(context.Background(), r, Options{}, fn)
}

// ReadTurtleWith is ReadTurtle with cancellation and fault-tolerance
// control. In strict mode (the zero Options) the first malformed statement
// aborts with a *ParseError; in lenient mode the parser reports the error to
// opts.OnError, re-synchronizes at the next top-level '.' terminator, and
// keeps parsing — triples already streamed from the failed statement's
// prefix stand. Parsing hard-stops with ErrTooManyErrors once opts.MaxErrors
// malformed statements have been skipped.
func ReadTurtleWith(ctx context.Context, r io.Reader, opts Options, fn TripleHandler) error {
	data, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	triples := int64(0)
	start := time.Now()
	defer func() { ttlMeter.Observe(triples, time.Since(start)) }()
	counted := func(t rdf.Triple) error {
		triples++
		return fn(t)
	}
	p := &ttlParser{
		ctx:      ctx,
		opts:     opts,
		sink:     errorSink{opts: &opts, counter: ttlSkipped},
		src:      string(data),
		prefixes: map[string]string{},
		emit:     counted,
	}
	return p.parse()
}

// maxTurtleDepth bounds blank-node property list, collection, and quoted
// triple nesting so that hostile inputs ("[[[[…", "((((…") fail with a
// ParseError instead of overflowing the stack.
const maxTurtleDepth = 128

type ttlParser struct {
	ctx      context.Context
	opts     Options
	sink     errorSink
	src      string
	pos      int
	line     int
	depth    int
	stmts    int
	prefixes map[string]string
	base     string
	emit     TripleHandler
	blankSeq int
}

// errf builds a parse error as a wrapped *ParseError carrying line, column,
// and an input snippet, so lenient mode can tell parse failures apart from
// handler and cancellation errors.
func (p *ttlParser) errf(format string, args ...any) error {
	col := p.pos - strings.LastIndexByte(p.src[:min(p.pos, len(p.src))], '\n')
	return fmt.Errorf("rio: turtle: %w", &ParseError{
		Line:   p.line + 1,
		Col:    col,
		Input:  p.snippet(),
		Reason: fmt.Sprintf(format, args...),
	})
}

// enter guards recursive productions against pathological nesting.
func (p *ttlParser) enter() error {
	p.depth++
	if p.depth > maxTurtleDepth {
		return p.errf("nesting deeper than %d levels", maxTurtleDepth)
	}
	return nil
}

func (p *ttlParser) leave() { p.depth-- }

func (p *ttlParser) parse() error {
	for {
		if p.stmts%64 == 0 {
			if err := p.ctx.Err(); err != nil {
				return err
			}
		}
		p.stmts++
		p.skipWS()
		if p.pos >= len(p.src) {
			return nil
		}
		if err := p.statement(); err != nil {
			var pe *ParseError
			if !p.opts.Lenient || !errors.As(err, &pe) {
				return err // strict mode, handler error, or cancellation
			}
			p.recoverStatement()
			if err := p.sink.record(*pe); err != nil {
				return err
			}
		}
	}
}

// recoverStatement advances past the remainder of a malformed statement:
// it scans for the next top-level '.' terminator, skipping over quoted
// strings, IRI references, and comments so '.' characters inside them do not
// end recovery early. Reaching end of input also terminates recovery.
func (p *ttlParser) recoverStatement() {
	for p.pos < len(p.src) {
		switch c := p.src[p.pos]; c {
		case '\n':
			p.line++
			p.pos++
		case '#':
			for p.pos < len(p.src) && p.src[p.pos] != '\n' {
				p.pos++
			}
		case '"', '\'':
			p.skipQuoted(c)
		case '<':
			for p.pos++; p.pos < len(p.src) && p.src[p.pos] != '>' && p.src[p.pos] != '\n'; p.pos++ {
			}
		case '.':
			p.pos++
			return
		default:
			p.pos++
		}
	}
}

// skipQuoted moves the cursor past a (possibly long) quoted string during
// recovery, tolerating unterminated strings by stopping at end of input.
func (p *ttlParser) skipQuoted(q byte) {
	long := strings.Repeat(string(q), 3)
	if strings.HasPrefix(p.src[p.pos:], long) {
		p.pos += 3
		if end := strings.Index(p.src[p.pos:], long); end >= 0 {
			p.line += strings.Count(p.src[p.pos:p.pos+end], "\n")
			p.pos += end + 3
		} else {
			p.line += strings.Count(p.src[p.pos:], "\n")
			p.pos = len(p.src)
		}
		return
	}
	for p.pos++; p.pos < len(p.src); {
		switch c := p.src[p.pos]; {
		case c == '\\' && p.pos+1 < len(p.src):
			p.pos += 2
		case c == q:
			p.pos++
			return
		case c == '\n':
			// Short strings cannot span lines; treat as end of the string.
			return
		default:
			p.pos++
		}
	}
}

func (p *ttlParser) statement() error {
	if p.hasKeyword("@prefix") || p.hasKeyword("PREFIX") {
		sparqlStyle := p.peekByte() == 'P'
		p.consumeWord()
		p.skipWS()
		ns, err := p.pnameNS()
		if err != nil {
			return err
		}
		p.skipWS()
		iri, err := p.iriRef()
		if err != nil {
			return err
		}
		p.prefixes[ns] = iri
		if !sparqlStyle {
			p.skipWS()
			if !p.eat('.') {
				return p.errf("expected '.' after @prefix")
			}
		}
		return nil
	}
	if p.hasKeyword("@base") || p.hasKeyword("BASE") {
		sparqlStyle := p.peekByte() == 'B'
		p.consumeWord()
		p.skipWS()
		iri, err := p.iriRef()
		if err != nil {
			return err
		}
		p.base = iri
		if !sparqlStyle {
			p.skipWS()
			if !p.eat('.') {
				return p.errf("expected '.' after @base")
			}
		}
		return nil
	}
	subj, err := p.subject()
	if err != nil {
		return err
	}
	p.skipWS()
	// A bare blank node property list may be a statement on its own.
	if subj.IsBlank() && p.peekByte() == '.' {
		p.eat('.')
		return nil
	}
	if err := p.predicateObjectList(subj); err != nil {
		return err
	}
	p.skipWS()
	if !p.eat('.') {
		return p.errf("expected '.' to end statement, found %q", p.peekRune())
	}
	return nil
}

func (p *ttlParser) predicateObjectList(subj rdf.Term) error {
	for {
		p.skipWS()
		pred, err := p.verb()
		if err != nil {
			return err
		}
		if err := p.objectList(subj, pred); err != nil {
			return err
		}
		p.skipWS()
		if !p.eat(';') {
			return nil
		}
		p.skipWS()
		// Trailing ';' before '.' or ']' is legal.
		if c := p.peekByte(); c == '.' || c == ']' || c == 0 {
			return nil
		}
	}
}

func (p *ttlParser) objectList(subj, pred rdf.Term) error {
	for {
		p.skipWS()
		obj, err := p.object()
		if err != nil {
			return err
		}
		if err := p.emit(rdf.NewTriple(subj, pred, obj)); err != nil {
			return err
		}
		p.skipWS()
		if !p.eat(',') {
			return nil
		}
	}
}

func (p *ttlParser) verb() (rdf.Term, error) {
	if p.peekByte() == 'a' && p.pos+1 < len(p.src) && isWSByte(p.src[p.pos+1]) {
		p.pos++
		return rdf.A, nil
	}
	return p.iri()
}

func (p *ttlParser) subject() (rdf.Term, error) {
	p.skipWS()
	switch c := p.peekByte(); {
	case c == '<' && strings.HasPrefix(p.src[p.pos:], "<<"):
		return p.quotedTriple()
	case c == '<':
		iri, err := p.iriRef()
		if err != nil {
			return rdf.Term{}, err
		}
		return rdf.NewIRI(iri), nil
	case c == '_':
		return p.blankLabel()
	case c == '[':
		return p.blankPropertyList()
	case c == '(':
		return p.collection()
	default:
		return p.iri()
	}
}

func (p *ttlParser) object() (rdf.Term, error) {
	switch c := p.peekByte(); {
	case c == '<' && strings.HasPrefix(p.src[p.pos:], "<<"):
		return p.quotedTriple()
	case c == '<':
		iri, err := p.iriRef()
		if err != nil {
			return rdf.Term{}, err
		}
		return rdf.NewIRI(iri), nil
	case c == '_':
		return p.blankLabel()
	case c == '[':
		return p.blankPropertyList()
	case c == '(':
		return p.collection()
	case c == '"' || c == '\'':
		return p.stringLiteral()
	case c == '+' || c == '-' || c >= '0' && c <= '9':
		return p.numericLiteral()
	case p.hasKeyword("true"):
		p.consumeWord()
		return rdf.NewTypedLiteral("true", rdf.XSDBoolean), nil
	case p.hasKeyword("false"):
		p.consumeWord()
		return rdf.NewTypedLiteral("false", rdf.XSDBoolean), nil
	default:
		return p.iri()
	}
}

// quotedTriple parses an RDF-star << s p o >> term.
func (p *ttlParser) quotedTriple() (rdf.Term, error) {
	if err := p.enter(); err != nil {
		return rdf.Term{}, err
	}
	defer p.leave()
	p.pos += 2 // <<
	var comps [3]rdf.Term
	for i := range comps {
		p.skipWS()
		var c rdf.Term
		var err error
		if i == 1 {
			c, err = p.verb()
		} else {
			c, err = p.object()
		}
		if err != nil {
			return rdf.Term{}, err
		}
		comps[i] = c
	}
	p.skipWS()
	if !strings.HasPrefix(p.src[p.pos:], ">>") {
		return rdf.Term{}, p.errf("expected '>>' closing quoted triple")
	}
	p.pos += 2
	tt, err := rdf.NewTripleTerm(rdf.NewTriple(comps[0], comps[1], comps[2]))
	if err != nil {
		return rdf.Term{}, p.errf("%v", err)
	}
	return tt, nil
}

func (p *ttlParser) blankPropertyList() (rdf.Term, error) {
	if err := p.enter(); err != nil {
		return rdf.Term{}, err
	}
	defer p.leave()
	p.eat('[')
	p.blankSeq++
	node := rdf.NewBlank(fmt.Sprintf("genid%d", p.blankSeq))
	p.skipWS()
	if p.eat(']') {
		return node, nil
	}
	if err := p.predicateObjectList(node); err != nil {
		return rdf.Term{}, err
	}
	p.skipWS()
	if !p.eat(']') {
		return rdf.Term{}, p.errf("expected ']' to close blank node property list")
	}
	return node, nil
}

func (p *ttlParser) collection() (rdf.Term, error) {
	if err := p.enter(); err != nil {
		return rdf.Term{}, err
	}
	defer p.leave()
	p.eat('(')
	first, rest, nilT := rdf.NewIRI(rdf.RDFFirst), rdf.NewIRI(rdf.RDFRest), rdf.NewIRI(rdf.RDFNil)
	var items []rdf.Term
	for {
		p.skipWS()
		if p.eat(')') {
			break
		}
		if p.pos >= len(p.src) {
			return rdf.Term{}, p.errf("unterminated collection")
		}
		it, err := p.object()
		if err != nil {
			return rdf.Term{}, err
		}
		items = append(items, it)
	}
	if len(items) == 0 {
		return nilT, nil
	}
	head := rdf.Term{}
	var prev rdf.Term
	for i, it := range items {
		p.blankSeq++
		cell := rdf.NewBlank(fmt.Sprintf("genid%d", p.blankSeq))
		if i == 0 {
			head = cell
		} else {
			if err := p.emit(rdf.NewTriple(prev, rest, cell)); err != nil {
				return rdf.Term{}, err
			}
		}
		if err := p.emit(rdf.NewTriple(cell, first, it)); err != nil {
			return rdf.Term{}, err
		}
		prev = cell
	}
	if err := p.emit(rdf.NewTriple(prev, rest, nilT)); err != nil {
		return rdf.Term{}, err
	}
	return head, nil
}

func (p *ttlParser) blankLabel() (rdf.Term, error) {
	if !strings.HasPrefix(p.src[p.pos:], "_:") {
		return rdf.Term{}, p.errf("malformed blank node")
	}
	p.pos += 2
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if isAlphaNum(c) || c == '_' || c == '-' {
			p.pos++
			continue
		}
		break
	}
	if p.pos == start {
		return rdf.Term{}, p.errf("empty blank node label")
	}
	return rdf.NewBlank(p.src[start:p.pos]), nil
}

func (p *ttlParser) stringLiteral() (rdf.Term, error) {
	quote := p.src[p.pos]
	long := strings.HasPrefix(p.src[p.pos:], strings.Repeat(string(quote), 3))
	var lex string
	if long {
		p.pos += 3
		end := strings.Index(p.src[p.pos:], strings.Repeat(string(quote), 3))
		if end < 0 {
			return rdf.Term{}, p.errf("unterminated long string")
		}
		lex = p.src[p.pos : p.pos+end]
		p.line += strings.Count(lex, "\n")
		p.pos += end + 3
	} else {
		p.pos++
		var b strings.Builder
		for {
			if p.pos >= len(p.src) {
				return rdf.Term{}, p.errf("unterminated string")
			}
			c := p.src[p.pos]
			if c == quote {
				p.pos++
				break
			}
			if c == '\n' {
				return rdf.Term{}, p.errf("newline in short string")
			}
			if c == '\\' {
				esc, n, err := decodeEscape(p.src[p.pos:])
				if err != nil {
					return rdf.Term{}, p.errf("%v", err)
				}
				b.WriteString(esc)
				p.pos += n
				continue
			}
			b.WriteByte(c)
			p.pos++
		}
		lex = b.String()
	}
	// Suffix: @lang or ^^datatype.
	if p.peekByte() == '@' {
		p.pos++
		start := p.pos
		for p.pos < len(p.src) && (isAlphaNum(p.src[p.pos]) || p.src[p.pos] == '-') {
			p.pos++
		}
		return rdf.NewLangLiteral(lex, p.src[start:p.pos]), nil
	}
	if strings.HasPrefix(p.src[p.pos:], "^^") {
		p.pos += 2
		dt, err := p.iri()
		if err != nil {
			return rdf.Term{}, err
		}
		return rdf.NewTypedLiteral(lex, dt.Value), nil
	}
	return rdf.NewLiteral(lex), nil
}

func (p *ttlParser) numericLiteral() (rdf.Term, error) {
	start := p.pos
	if c := p.peekByte(); c == '+' || c == '-' {
		p.pos++
	}
	hasDot, hasExp := false, false
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		switch {
		case c >= '0' && c <= '9':
			p.pos++
		case c == '.' && !hasDot && !hasExp && p.pos+1 < len(p.src) && p.src[p.pos+1] >= '0' && p.src[p.pos+1] <= '9':
			hasDot = true
			p.pos++
		case (c == 'e' || c == 'E') && !hasExp:
			hasExp = true
			p.pos++
			if n := p.peekByte(); n == '+' || n == '-' {
				p.pos++
			}
		default:
			goto done
		}
	}
done:
	lex := p.src[start:p.pos]
	if lex == "" || lex == "+" || lex == "-" {
		return rdf.Term{}, p.errf("malformed number")
	}
	switch {
	case hasExp:
		return rdf.NewTypedLiteral(lex, rdf.XSDDouble), nil
	case hasDot:
		return rdf.NewTypedLiteral(lex, rdf.XSDDecimal), nil
	default:
		return rdf.NewTypedLiteral(lex, rdf.XSDInteger), nil
	}
}

func (p *ttlParser) iri() (rdf.Term, error) {
	if p.peekByte() == '<' {
		iri, err := p.iriRef()
		if err != nil {
			return rdf.Term{}, err
		}
		return rdf.NewIRI(iri), nil
	}
	// Prefixed name: PN_PREFIX? ':' PN_LOCAL
	start := p.pos
	for p.pos < len(p.src) && isPNChar(rune(p.src[p.pos])) {
		p.pos++
	}
	if p.pos >= len(p.src) || p.src[p.pos] != ':' {
		return rdf.Term{}, p.errf("expected IRI or prefixed name at %q", p.snippet())
	}
	prefix := p.src[start:p.pos]
	p.pos++ // ':'
	localStart := p.pos
	for p.pos < len(p.src) {
		c := rune(p.src[p.pos])
		if isPNChar(c) || c == '.' && p.pos+1 < len(p.src) && isPNChar(rune(p.src[p.pos+1])) {
			p.pos++
			continue
		}
		if c == '\\' && p.pos+1 < len(p.src) { // PN_LOCAL escapes like \,
			p.pos += 2
			continue
		}
		break
	}
	local := strings.NewReplacer(`\,`, ",", `\;`, ";", `\(`, "(", `\)`, ")", `\.`, ".", `\-`, "-").
		Replace(p.src[localStart:p.pos])
	ns, ok := p.prefixes[prefix]
	if !ok {
		return rdf.Term{}, p.errf("undeclared prefix %q", prefix)
	}
	return rdf.NewIRI(ns + local), nil
}

func (p *ttlParser) iriRef() (string, error) {
	if p.peekByte() != '<' {
		return "", p.errf("expected '<'")
	}
	end := strings.IndexByte(p.src[p.pos:], '>')
	if end < 0 {
		return "", p.errf("unterminated IRI")
	}
	iri := p.src[p.pos+1 : p.pos+end]
	p.pos += end + 1
	if p.base != "" && !strings.Contains(iri, "://") && !strings.HasPrefix(iri, "urn:") {
		iri = p.base + iri
	}
	return iri, nil
}

func (p *ttlParser) pnameNS() (string, error) {
	start := p.pos
	for p.pos < len(p.src) && isPNChar(rune(p.src[p.pos])) {
		p.pos++
	}
	if p.pos >= len(p.src) || p.src[p.pos] != ':' {
		return "", p.errf("expected prefix name")
	}
	ns := p.src[start:p.pos]
	p.pos++
	return ns, nil
}

func isPNChar(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-'
}

func (p *ttlParser) skipWS() {
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		switch {
		case c == '\n':
			p.line++
			p.pos++
		case c == ' ' || c == '\t' || c == '\r':
			p.pos++
		case c == '#':
			for p.pos < len(p.src) && p.src[p.pos] != '\n' {
				p.pos++
			}
		default:
			return
		}
	}
}

func (p *ttlParser) peekByte() byte {
	if p.pos >= len(p.src) {
		return 0
	}
	return p.src[p.pos]
}

func (p *ttlParser) peekRune() rune {
	if p.pos >= len(p.src) {
		return 0
	}
	r, _ := utf8.DecodeRuneInString(p.src[p.pos:])
	return r
}

func (p *ttlParser) eat(c byte) bool {
	if p.peekByte() == c {
		p.pos++
		return true
	}
	return false
}

// hasKeyword reports whether the input at the cursor starts with the word
// followed by a non-word character.
func (p *ttlParser) hasKeyword(w string) bool {
	if !strings.HasPrefix(p.src[p.pos:], w) {
		return false
	}
	rest := p.src[p.pos+len(w):]
	return rest == "" || !isAlphaNum(rest[0])
}

func (p *ttlParser) consumeWord() {
	for p.pos < len(p.src) && !isWSByte(p.src[p.pos]) {
		p.pos++
	}
}

func (p *ttlParser) snippet() string {
	end := p.pos + 20
	if end > len(p.src) {
		end = len(p.src)
	}
	return p.src[p.pos:end]
}

func isWSByte(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }
