package rio

import (
	"bufio"
	"io"
	"sort"
	"strings"

	"github.com/s3pg/s3pg/internal/rdf"
)

// TurtleWriter serializes graphs in Turtle, grouping triples by subject and
// abbreviating IRIs with the registered prefixes.
type TurtleWriter struct {
	prefixes []prefixDecl // longest namespace first
}

type prefixDecl struct {
	name string
	ns   string
}

// NewTurtleWriter returns a writer with the standard rdf/rdfs/xsd/sh prefixes.
func NewTurtleWriter() *TurtleWriter {
	w := &TurtleWriter{}
	w.Prefix("rdf", rdf.RDFNS)
	w.Prefix("rdfs", rdf.RDFSNS)
	w.Prefix("xsd", rdf.XSDNS)
	w.Prefix("sh", rdf.SHNS)
	return w
}

// Prefix registers a namespace abbreviation.
func (w *TurtleWriter) Prefix(name, ns string) {
	for i, p := range w.prefixes {
		if p.name == name {
			w.prefixes[i].ns = ns
			return
		}
	}
	w.prefixes = append(w.prefixes, prefixDecl{name, ns})
	sort.SliceStable(w.prefixes, func(i, j int) bool {
		return len(w.prefixes[i].ns) > len(w.prefixes[j].ns)
	})
}

// Write serializes the graph to out.
func (w *TurtleWriter) Write(out io.Writer, g *rdf.Graph) error {
	bw := bufio.NewWriterSize(out, 1<<16)
	names := make([]string, 0, len(w.prefixes))
	for _, p := range w.prefixes {
		names = append(names, p.name)
	}
	sort.Strings(names)
	for _, name := range names {
		for _, p := range w.prefixes {
			if p.name == name {
				bw.WriteString("@prefix ")
				bw.WriteString(p.name)
				bw.WriteString(": <")
				bw.WriteString(p.ns)
				bw.WriteString("> .\n")
			}
		}
	}
	bw.WriteByte('\n')

	// Group triples by subject, keeping first-seen subject order.
	type group struct {
		subj  rdf.Term
		preds []rdf.Term
		objs  map[rdf.Term][]rdf.Term
	}
	var order []rdf.Term
	groups := make(map[rdf.Term]*group)
	g.ForEach(func(t rdf.Triple) bool {
		gr, ok := groups[t.S]
		if !ok {
			gr = &group{subj: t.S, objs: make(map[rdf.Term][]rdf.Term)}
			groups[t.S] = gr
			order = append(order, t.S)
		}
		if _, seen := gr.objs[t.P]; !seen {
			gr.preds = append(gr.preds, t.P)
		}
		gr.objs[t.P] = append(gr.objs[t.P], t.O)
		return true
	})

	for _, s := range order {
		gr := groups[s]
		bw.WriteString(w.termString(s))
		for pi, p := range gr.preds {
			if pi == 0 {
				bw.WriteByte(' ')
			} else {
				bw.WriteString(" ;\n    ")
			}
			if p == rdf.A {
				bw.WriteString("a")
			} else {
				bw.WriteString(w.termString(p))
			}
			for oi, o := range gr.objs[p] {
				if oi == 0 {
					bw.WriteByte(' ')
				} else {
					bw.WriteString(", ")
				}
				bw.WriteString(w.termString(o))
			}
		}
		bw.WriteString(" .\n")
	}
	return bw.Flush()
}

// termString renders a term with prefix abbreviation when safe.
func (w *TurtleWriter) termString(t rdf.Term) string {
	switch t.Kind {
	case rdf.IRI:
		for _, p := range w.prefixes {
			if strings.HasPrefix(t.Value, p.ns) {
				local := t.Value[len(p.ns):]
				if isSafeLocal(local) {
					return p.name + ":" + local
				}
			}
		}
		return "<" + t.Value + ">"
	case rdf.Literal:
		if t.Lang == "" && t.Datatype != "" {
			// Abbreviate the datatype too.
			dt := w.termString(rdf.NewIRI(t.Datatype))
			return `"` + rdf.EscapeLiteral(t.Value) + `"^^` + dt
		}
		return t.String()
	default:
		return t.String()
	}
}

func isSafeLocal(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if !isPNChar(r) {
			return false
		}
	}
	return true
}
