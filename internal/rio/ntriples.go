// Package rio implements RDF serialization I/O: a fast streaming N-Triples
// reader and writer for instance data, and a Turtle reader and writer rich
// enough for SHACL shape documents (prefixes, 'a', ';' and ',' abbreviations,
// blank node property lists, and RDF collections).
package rio

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/s3pg/s3pg/internal/obs"
	"github.com/s3pg/s3pg/internal/rdf"
)

// Ingestion throughput meters (obs.Default registry). Readers batch one
// Observe call per document, so the per-triple cost is a local increment.
var (
	ntMeter  = obs.Default.Meter("rio.ntriples.triples")
	ttlMeter = obs.Default.Meter("rio.turtle.triples")
)

// TripleHandler receives each parsed triple. Returning an error aborts the
// parse and is propagated to the caller.
type TripleHandler func(rdf.Triple) error

// ReadNTriples parses an N-Triples document from r, streaming each triple to
// fn. Lines that are empty or comments are skipped. The reader allocates no
// intermediate graph, so arbitrarily large files can be processed. It is the
// strict, non-cancellable form of ReadNTriplesWith.
func ReadNTriples(r io.Reader, fn TripleHandler) error {
	return ReadNTriplesWith(context.Background(), r, Options{}, fn)
}

// ctxCheckInterval is how many lines/statements the readers process between
// context cancellation checks: frequent enough that cancellation is prompt,
// rare enough that the per-statement cost is unmeasurable.
const ctxCheckInterval = 4096

// ReadNTriplesWith is ReadNTriples with cancellation and fault-tolerance
// control. In strict mode (the zero Options) the first malformed line aborts
// with a *ParseError; in lenient mode malformed lines are skipped, reported
// to opts.OnError, counted in the rio.ntriples.skipped counter, and the
// parse hard-stops with ErrTooManyErrors once opts.MaxErrors is exceeded.
// Lines are read through a bufio.Reader, so there is no upper bound on line
// length (bufio.Scanner's token limit does not apply).
func ReadNTriplesWith(ctx context.Context, r io.Reader, opts Options, fn TripleHandler) error {
	sc := NewNTriplesScanner(r, opts)
	for {
		if sc.Line()%ctxCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		t, ok, err := sc.Scan()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if err := fn(t); err != nil {
			return err
		}
	}
}

// LoadNTriples parses an N-Triples document into a new graph.
func LoadNTriples(r io.Reader) (*rdf.Graph, error) {
	return LoadNTriplesWith(context.Background(), r, Options{})
}

// LoadNTriplesWith is LoadNTriples with cancellation and fault-tolerance
// control (see ReadNTriplesWith).
func LoadNTriplesWith(ctx context.Context, r io.Reader, opts Options) (*rdf.Graph, error) {
	g := rdf.NewGraph()
	err := ReadNTriplesWith(ctx, r, opts, func(t rdf.Triple) error {
		g.Add(t)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return g, nil
}

// ParseNTriplesLine parses one N-Triples statement (without trailing newline).
// Parse failures are returned as a *ParseError carrying the column and the
// offending input (the line number is unknown at this level and left zero).
func ParseNTriplesLine(line string) (rdf.Triple, error) {
	t, perr := parseNTriplesLine(line)
	if perr != nil {
		return rdf.Triple{}, perr
	}
	return t, nil
}

func parseNTriplesLine(line string) (rdf.Triple, *ParseError) {
	p := &ntParser{in: line}
	fail := func(what string, err error) *ParseError {
		return &ParseError{Col: p.pos + 1, Input: line, Reason: what + ": " + err.Error()}
	}
	s, err := p.term()
	if err != nil {
		return rdf.Triple{}, fail("subject", err)
	}
	pr, err := p.term()
	if err != nil {
		return rdf.Triple{}, fail("predicate", err)
	}
	o, err := p.term()
	if err != nil {
		return rdf.Triple{}, fail("object", err)
	}
	p.skipSpace()
	if p.pos >= len(p.in) || p.in[p.pos] != '.' {
		return rdf.Triple{}, &ParseError{Col: p.pos + 1, Input: line, Reason: "expected terminating '.'"}
	}
	t := rdf.NewTriple(s, pr, o)
	if !t.Valid() {
		return rdf.Triple{}, &ParseError{Col: 1, Input: line, Reason: "malformed triple (term kinds violate RDF positions)"}
	}
	return t, nil
}

// maxQuotedDepth bounds RDF-star quoted-triple nesting so that hostile
// inputs like "<<<<<<…" fail with a ParseError instead of overflowing the
// stack.
const maxQuotedDepth = 64

type ntParser struct {
	in    string
	pos   int
	depth int
}

func (p *ntParser) skipSpace() {
	for p.pos < len(p.in) && (p.in[p.pos] == ' ' || p.in[p.pos] == '\t') {
		p.pos++
	}
}

func (p *ntParser) term() (rdf.Term, error) {
	p.skipSpace()
	if p.pos >= len(p.in) {
		return rdf.Term{}, fmt.Errorf("unexpected end of line")
	}
	switch p.in[p.pos] {
	case '<':
		// RDF-star quoted triple: << s p o >>.
		if p.pos+1 < len(p.in) && p.in[p.pos+1] == '<' {
			p.depth++
			defer func() { p.depth-- }()
			if p.depth > maxQuotedDepth {
				return rdf.Term{}, fmt.Errorf("quoted triples nested deeper than %d", maxQuotedDepth)
			}
			p.pos += 2
			var comps [3]rdf.Term
			for i := range comps {
				c, err := p.term()
				if err != nil {
					return rdf.Term{}, fmt.Errorf("quoted triple component %d: %w", i+1, err)
				}
				comps[i] = c
			}
			p.skipSpace()
			if !strings.HasPrefix(p.in[p.pos:], ">>") {
				return rdf.Term{}, fmt.Errorf("unterminated quoted triple")
			}
			p.pos += 2
			return rdf.NewTripleTerm(rdf.NewTriple(comps[0], comps[1], comps[2]))
		}
		end := strings.IndexByte(p.in[p.pos:], '>')
		if end < 0 {
			return rdf.Term{}, fmt.Errorf("unterminated IRI")
		}
		iri := p.in[p.pos+1 : p.pos+end]
		p.pos += end + 1
		return rdf.NewIRI(iri), nil
	case '_':
		if p.pos+1 >= len(p.in) || p.in[p.pos+1] != ':' {
			return rdf.Term{}, fmt.Errorf("malformed blank node")
		}
		start := p.pos + 2
		i := start
		for i < len(p.in) && !isNTDelim(p.in[i]) {
			i++
		}
		label := p.in[start:i]
		if label == "" {
			return rdf.Term{}, fmt.Errorf("empty blank node label")
		}
		p.pos = i
		return rdf.NewBlank(label), nil
	case '"':
		return p.literal()
	default:
		return rdf.Term{}, fmt.Errorf("unexpected character %q", p.in[p.pos])
	}
}

func isNTDelim(c byte) bool { return c == ' ' || c == '\t' || c == '.' || c == '<' }

func (p *ntParser) literal() (rdf.Term, error) {
	// p.in[p.pos] == '"'
	i := p.pos + 1
	var b strings.Builder
	for {
		if i >= len(p.in) {
			return rdf.Term{}, fmt.Errorf("unterminated literal")
		}
		c := p.in[i]
		if c == '"' {
			break
		}
		if c == '\\' {
			if i+1 >= len(p.in) {
				return rdf.Term{}, fmt.Errorf("dangling escape")
			}
			esc, n, err := decodeEscape(p.in[i:])
			if err != nil {
				return rdf.Term{}, err
			}
			b.WriteString(esc)
			i += n
			continue
		}
		b.WriteByte(c)
		i++
	}
	lex := b.String()
	i++ // closing quote
	// Optional language tag or datatype.
	if i < len(p.in) && p.in[i] == '@' {
		start := i + 1
		for i++; i < len(p.in) && (isAlphaNum(p.in[i]) || p.in[i] == '-'); i++ {
		}
		lang := p.in[start:i]
		p.pos = i
		return rdf.NewLangLiteral(lex, lang), nil
	}
	if i+1 < len(p.in) && p.in[i] == '^' && p.in[i+1] == '^' {
		i += 2
		if i >= len(p.in) || p.in[i] != '<' {
			return rdf.Term{}, fmt.Errorf("expected datatype IRI")
		}
		end := strings.IndexByte(p.in[i:], '>')
		if end < 0 {
			return rdf.Term{}, fmt.Errorf("unterminated datatype IRI")
		}
		dt := p.in[i+1 : i+end]
		p.pos = i + end + 1
		return rdf.NewTypedLiteral(lex, dt), nil
	}
	p.pos = i
	return rdf.NewLiteral(lex), nil
}

// decodeEscape decodes a backslash escape at the start of s, returning the
// decoded string and the number of input bytes consumed.
func decodeEscape(s string) (string, int, error) {
	switch s[1] {
	case 't':
		return "\t", 2, nil
	case 'n':
		return "\n", 2, nil
	case 'r':
		return "\r", 2, nil
	case '"':
		return `"`, 2, nil
	case '\\':
		return `\`, 2, nil
	case 'u':
		if len(s) < 6 {
			return "", 0, fmt.Errorf("short \\u escape")
		}
		n, err := strconv.ParseUint(s[2:6], 16, 32)
		if err != nil {
			return "", 0, fmt.Errorf("bad \\u escape: %v", err)
		}
		return string(rune(n)), 6, nil
	case 'U':
		if len(s) < 10 {
			return "", 0, fmt.Errorf("short \\U escape")
		}
		n, err := strconv.ParseUint(s[2:10], 16, 32)
		if err != nil {
			return "", 0, fmt.Errorf("bad \\U escape: %v", err)
		}
		return string(rune(n)), 10, nil
	default:
		return "", 0, fmt.Errorf("unknown escape \\%c", s[1])
	}
}

func isAlphaNum(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

// WriteNTriples serializes the graph to w in N-Triples format.
func WriteNTriples(w io.Writer, g *rdf.Graph) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	var err error
	g.ForEach(func(t rdf.Triple) bool {
		if _, werr := bw.WriteString(t.String()); werr != nil {
			err = werr
			return false
		}
		if werr := bw.WriteByte('\n'); werr != nil {
			err = werr
			return false
		}
		return true
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}
