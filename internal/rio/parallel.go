package rio

import (
	"context"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/s3pg/s3pg/internal/obs"
	"github.com/s3pg/s3pg/internal/rdf"
)

// cParRanges counts byte ranges scanned by the parallel N-Triples loader.
var cParRanges = obs.Default.Counter("rio.ntriples.parallel_ranges")

// rangesPerWorker over-partitions the input so a range that happens to be
// dense (long lines parse slower than short ones) does not stall the tail.
const rangesPerWorker = 4

// ntRange is a half-open byte range [start, end) of the input. A range owns
// exactly the lines whose first byte falls inside it; a line that merely
// crosses into the range from the left is skipped (its owner is the range
// containing its first byte).
type ntRange struct {
	start, end int64
}

// provTriple is a triple encoded with provisional sharded-dictionary ids.
type provTriple struct {
	s, p, o rdf.ProvID
}

// ntRangeResult is one range's scan outcome. Line numbers in errs/parseErr
// are 1-based *within the range*; the merge step prefix-sums range line
// counts to recover global line numbers.
type ntRangeResult struct {
	triples  []provTriple
	errs     []ParseError
	lines    int
	ioErr    error
	parseErr *ParseError // strict mode: the range's first malformed line
}

// LoadNTriplesParallel parses an N-Triples document of the given size from r
// on the given number of workers and returns the loaded graph.
//
// The input is split into newline-aligned byte ranges; each worker parses its
// ranges independently, interning terms through a sharded dictionary, and a
// deterministic merge replays the per-range results in input order: term ids
// are dense-remapped in first-occurrence order, duplicate triples are dropped
// first-wins, and lenient-mode parse errors are re-delivered to opts.OnError
// in line order against the same MaxErrors budget. The resulting graph —
// dictionary ids, triple admission order, posting lists — and every error
// outcome (strict *ParseError, ErrTooManyErrors, I/O failure, cancellation)
// are identical to LoadNTriplesWith over the same bytes. workers <= 1 runs
// the sequential loader unchanged.
func LoadNTriplesParallel(ctx context.Context, r io.ReaderAt, size int64, opts Options, workers int) (*rdf.Graph, error) {
	return LoadNTriplesParallelTraced(ctx, r, size, opts, workers, nil)
}

// LoadNTriplesParallelTraced is LoadNTriplesParallel recording the scan and
// merge steps as child spans of span (nil disables tracing).
func LoadNTriplesParallelTraced(ctx context.Context, r io.ReaderAt, size int64, opts Options, workers int, span *obs.Span) (*rdf.Graph, error) {
	if workers <= 1 {
		return LoadNTriplesWith(ctx, io.NewSectionReader(r, 0, size), opts)
	}
	start := time.Now()
	ranges := splitByteRanges(size, workers*rangesPerWorker)
	cParRanges.Add(int64(len(ranges)))

	// Lenient ranges buffer at most budget+1 errors each: replaying budget+1
	// errors from any single range already exhausts the global budget, so
	// deeper buffering could never be observed.
	capErrs := -1
	if m := opts.maxErrors(); m < int(^uint(0)>>1) {
		capErrs = m + 1
	}

	sc := span.StartSpan("scan")
	sd := rdf.NewShardedDict()
	results := make([]ntRangeResult, len(ranges))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(ranges) {
					return
				}
				scanNTRange(ctx, r, size, ranges[i], opts.Lenient, capErrs, sd, &results[i])
			}
		}()
	}
	wg.Wait()
	sc.Count("ranges", int64(len(ranges)))
	sc.Count("terms_staged", int64(sd.Len()))
	sc.End()

	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Merge step 1: fault replay in input order. Whichever failure occupies
	// the earliest range is the one an uninterrupted sequential scan would
	// have hit first, so it wins; lenient parse errors are replayed through
	// the same errorSink as the sequential reader, preserving OnError
	// delivery order, skip counting, and the ErrTooManyErrors cutoff.
	mg := span.StartSpan("merge")
	defer mg.End()
	sink := errorSink{opts: &opts, counter: ntSkipped}
	line := 0
	skipped := int64(0)
	for i := range ranges {
		res := &results[i]
		if res.parseErr != nil {
			res.parseErr.Line += line
			return nil, fmt.Errorf("rio: %w", res.parseErr)
		}
		for j := range res.errs {
			pe := res.errs[j]
			pe.Line += line
			skipped++
			if err := sink.record(pe); err != nil {
				return nil, err
			}
		}
		if res.ioErr != nil {
			return nil, res.ioErr
		}
		line += res.lines
	}

	// Merge step 2: dense-remap provisional ids in input order and bulk-build
	// the graph. The Denser walk assigns TermIDs in exactly the order
	// sequential interning would, and NewGraphFromEncoded preserves admission
	// order, so the result is byte-for-byte the sequential graph.
	total := 0
	for i := range results {
		total += len(results[i].triples)
	}
	dn := rdf.NewDenser(sd)
	enc := make([]rdf.EncodedTriple, 0, total)
	for i := range results {
		for _, pt := range results[i].triples {
			enc = append(enc, rdf.EncodedTriple{S: dn.Dense(pt.s), P: dn.Dense(pt.p), O: dn.Dense(pt.o)})
		}
	}
	g := rdf.NewGraphFromEncoded(dn.Dict(), enc, workers)
	mg.Count("triples", int64(total))
	mg.Count("skipped", skipped)
	ntMeter.Observe(int64(total), time.Since(start))
	return g, nil
}

// splitByteRanges cuts [0, size) into at most n contiguous ranges.
func splitByteRanges(size int64, n int) []ntRange {
	if int64(n) > size {
		n = int(size)
	}
	rs := make([]ntRange, 0, n)
	for i := 0; i < n; i++ {
		rs = append(rs, ntRange{size * int64(i) / int64(n), size * int64(i+1) / int64(n)})
	}
	return rs
}

// scanNTRange parses the lines owned by one byte range, staging triples with
// provisional ids. It mirrors NTriplesScanner.Scan line for line: blank and
// comment lines are skipped (but counted), malformed lines abort in strict
// mode and are buffered in lenient mode, and I/O errors abort the range.
func scanNTRange(ctx context.Context, r io.ReaderAt, size int64, rg ntRange, lenient bool, capErrs int, sd *rdf.ShardedDict, res *ntRangeResult) {
	br := newByteCountReader(io.NewSectionReader(r, rg.start, size-rg.start), 128*1024)
	br.base = rg.start
	if rg.start > 0 {
		// Ownership probe: if the byte before the range is not a newline, the
		// range starts mid-line and that line belongs to the previous range —
		// consume and discard it. (A line spanning several whole ranges makes
		// the skip run past rg.end, leaving those ranges empty, which is
		// exactly right.)
		var prev [1]byte
		if _, err := r.ReadAt(prev[:], rg.start-1); err != nil {
			res.ioErr = err
			return
		}
		if prev[0] != '\n' {
			if _, err := br.readLine(); err != nil {
				if err != io.EOF {
					res.ioErr = err
				}
				return // the partial line ran to end of input; nothing owned
			}
		}
	}
	for {
		if br.consumed() >= rg.end {
			return
		}
		if res.lines%ctxCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				res.ioErr = err
				return
			}
		}
		raw, rerr := br.readLine()
		if rerr != nil && rerr != io.EOF {
			res.ioErr = rerr
			return
		}
		atEOF := rerr == io.EOF
		if raw == "" && atEOF {
			return
		}
		res.lines++
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			if atEOF {
				return
			}
			continue
		}
		tr, perr := parseNTriplesLine(line)
		if perr != nil {
			perr.Line = res.lines
			if !lenient {
				res.parseErr = perr
				return
			}
			if capErrs < 0 || len(res.errs) < capErrs {
				res.errs = append(res.errs, *perr)
			}
			if atEOF {
				return
			}
			continue
		}
		res.triples = append(res.triples, provTriple{sd.Intern(tr.S), sd.Intern(tr.P), sd.Intern(tr.O)})
		if atEOF {
			return
		}
	}
}
