package rio

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"github.com/s3pg/s3pg/internal/rdf"
)

// loadBoth parses src sequentially and in parallel with the given worker
// count, returning both results.
func loadBoth(t *testing.T, src string, opts Options, workers int) (seq, par *rdf.Graph, seqErr, parErr error) {
	t.Helper()
	seq, seqErr = LoadNTriplesWith(context.Background(), strings.NewReader(src), opts)
	par, parErr = LoadNTriplesParallel(context.Background(), strings.NewReader(src), int64(len(src)), opts, workers)
	return seq, par, seqErr, parErr
}

// requireIdentical asserts the two graphs are byte-identical in every way the
// pipeline can observe: serialization (triple order and term rendering) and
// dictionary id assignment.
func requireIdentical(t *testing.T, seq, par *rdf.Graph) {
	t.Helper()
	var sb, pb bytes.Buffer
	if err := WriteNTriples(&sb, seq); err != nil {
		t.Fatal(err)
	}
	if err := WriteNTriples(&pb, par); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sb.Bytes(), pb.Bytes()) {
		t.Fatalf("serializations differ:\nsequential %d bytes, parallel %d bytes", sb.Len(), pb.Len())
	}
	sd, pd := seq.Dict(), par.Dict()
	if sd.Len() != pd.Len() {
		t.Fatalf("dict sizes differ: sequential %d, parallel %d", sd.Len(), pd.Len())
	}
	for i := 0; i < sd.Len(); i++ {
		if sd.Term(rdf.TermID(i)) != pd.Term(rdf.TermID(i)) {
			t.Fatalf("dict id %d: sequential %v, parallel %v", i, sd.Term(rdf.TermID(i)), pd.Term(rdf.TermID(i)))
		}
	}
}

// syntheticNT builds a document with duplicates, blank lines, comments, all
// term kinds, and a quoted-triple statement.
func syntheticNT(n int) string {
	var b strings.Builder
	b.WriteString("# header comment\n\n")
	for i := 0; i < n; i++ {
		switch i % 4 {
		case 0:
			fmt.Fprintf(&b, "<http://ex.org/s%d> <http://ex.org/p> \"v%d\" .\n", i%97, i%211)
		case 1:
			fmt.Fprintf(&b, "_:b%d <http://ex.org/q> <http://ex.org/s%d> .\n", i%53, i%97)
		case 2:
			fmt.Fprintf(&b, "<http://ex.org/s%d> <http://ex.org/r> \"%d\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n", i%97, i%89)
		default:
			fmt.Fprintf(&b, "<< <http://ex.org/s%d> <http://ex.org/p> \"v%d\" >> <http://ex.org/w> \"0.%d\"^^<http://www.w3.org/2001/XMLSchema#decimal> .\n", i%97, i%211, i%7)
		}
		if i%50 == 0 {
			b.WriteString("\n# interleaved comment\n")
		}
	}
	return b.String()
}

func TestLoadNTriplesParallelMatchesSequential(t *testing.T) {
	src := syntheticNT(5000)
	for _, workers := range []int{2, 3, 8} {
		seq, par, serr, perr := loadBoth(t, src, Options{}, workers)
		if serr != nil || perr != nil {
			t.Fatalf("workers=%d: sequential err %v, parallel err %v", workers, serr, perr)
		}
		requireIdentical(t, seq, par)
	}
}

func TestLoadNTriplesParallelEdgeInputs(t *testing.T) {
	long := "<http://ex.org/long> <http://ex.org/p> \"" + strings.Repeat("x", 64*1024) + "\" ."
	cases := map[string]string{
		"empty":                      "",
		"only_comment":               "# nothing here\n",
		"no_trailing_newline":        "<http://ex.org/a> <http://ex.org/p> \"v\" .",
		"tiny":                       "<http://ex.org/a> <http://ex.org/p> \"v\" .\n",
		"long_line_spans_all_ranges": long + "\n<http://ex.org/b> <http://ex.org/p> \"w\" .\n",
		"crlf_absent_blank_heavy":    "\n\n\n<http://ex.org/a> <http://ex.org/p> \"v\" .\n\n",
	}
	for name, src := range cases {
		for _, workers := range []int{2, 8} {
			seq, par, serr, perr := loadBoth(t, src, Options{}, workers)
			if serr != nil || perr != nil {
				t.Fatalf("%s workers=%d: sequential err %v, parallel err %v", name, workers, serr, perr)
			}
			requireIdentical(t, seq, par)
		}
	}
}

// dirtyNT interleaves malformed lines into a synthetic document.
func dirtyNT(n, everyN int) string {
	clean := strings.Split(strings.TrimRight(syntheticNT(n), "\n"), "\n")
	var b strings.Builder
	for i, line := range clean {
		b.WriteString(line)
		b.WriteByte('\n')
		if i%everyN == 0 {
			b.WriteString("this line is garbage\n")
		}
	}
	return b.String()
}

func TestLoadNTriplesParallelLenientErrorReplay(t *testing.T) {
	src := dirtyNT(2000, 40)
	collect := func(errs *[]ParseError) Options {
		return Options{Lenient: true, MaxErrors: -1, OnError: func(pe ParseError) { *errs = append(*errs, pe) }}
	}
	var seqErrs []ParseError
	seq, serr := LoadNTriplesWith(context.Background(), strings.NewReader(src), collect(&seqErrs))
	if serr != nil {
		t.Fatal(serr)
	}
	for _, workers := range []int{2, 8} {
		var parErrs []ParseError
		par, perr := LoadNTriplesParallel(context.Background(), strings.NewReader(src), int64(len(src)), collect(&parErrs), workers)
		if perr != nil {
			t.Fatal(perr)
		}
		requireIdentical(t, seq, par)
		if len(parErrs) != len(seqErrs) {
			t.Fatalf("workers=%d: %d errors delivered, sequential %d", workers, len(parErrs), len(seqErrs))
		}
		for i := range parErrs {
			if parErrs[i] != seqErrs[i] {
				t.Fatalf("workers=%d error %d: parallel %+v, sequential %+v", workers, i, parErrs[i], seqErrs[i])
			}
		}
	}
}

func TestLoadNTriplesParallelStrictErrorMatches(t *testing.T) {
	src := dirtyNT(500, 90)
	_, _, serr, perr := loadBoth(t, src, Options{}, 4)
	if serr == nil || perr == nil {
		t.Fatalf("expected both to fail: sequential %v, parallel %v", serr, perr)
	}
	if serr.Error() != perr.Error() {
		t.Fatalf("error texts differ:\nsequential: %v\nparallel:   %v", serr, perr)
	}
	var spe, ppe *ParseError
	if !errors.As(serr, &spe) || !errors.As(perr, &ppe) {
		t.Fatalf("expected *ParseError from both, got %T / %T", serr, perr)
	}
	if *spe != *ppe {
		t.Fatalf("parse errors differ: sequential %+v, parallel %+v", *spe, *ppe)
	}
}

func TestLoadNTriplesParallelErrorBudgetMatches(t *testing.T) {
	src := dirtyNT(2000, 20)
	opts := Options{Lenient: true, MaxErrors: 5}
	_, _, serr, perr := loadBoth(t, src, opts, 8)
	if !errors.Is(serr, ErrTooManyErrors) || !errors.Is(perr, ErrTooManyErrors) {
		t.Fatalf("expected ErrTooManyErrors from both, got %v / %v", serr, perr)
	}
	if serr.Error() != perr.Error() {
		t.Fatalf("error texts differ:\nsequential: %v\nparallel:   %v", serr, perr)
	}
}

func TestLoadNTriplesParallelCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	src := syntheticNT(100)
	_, err := LoadNTriplesParallel(ctx, strings.NewReader(src), int64(len(src)), Options{}, 4)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
