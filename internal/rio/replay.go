package rio

// ErrorReplayer re-applies lenient-mode error accounting for parse errors
// that were collected elsewhere — on another goroutine, or on another machine
// entirely. LoadNTriplesParallel uses the same mechanism internally when it
// replays per-range errors in input order; internal/dist exposes it so a
// coordinator merging shard results from remote workers drives the identical
// Options semantics (OnError callbacks in input order, the rio.ntriples.skipped
// counter, and the MaxErrors budget with the same ErrTooManyErrors wrapping) as
// a sequential in-process load of the whole file.
type ErrorReplayer struct {
	opts Options
	sink errorSink
}

// NewErrorReplayer returns a replayer enforcing opts. Callers replay errors in
// input order: Record mirrors exactly what the lenient N-Triples reader would
// have done had it skipped the statement itself.
func NewErrorReplayer(opts Options) *ErrorReplayer {
	r := &ErrorReplayer{opts: opts}
	r.sink = errorSink{opts: &r.opts, counter: ntSkipped}
	return r
}

// Record accounts one skipped statement. The returned error is non-nil (a
// wrapped ErrTooManyErrors) once the budget is exhausted, at which point the
// caller must abort the merge just as the reader aborts the parse.
func (r *ErrorReplayer) Record(pe ParseError) error {
	return r.sink.record(pe)
}

// Skipped returns how many statements have been recorded so far.
func (r *ErrorReplayer) Skipped() int { return r.sink.n }
