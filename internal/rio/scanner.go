package rio

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"time"

	"github.com/s3pg/s3pg/internal/rdf"
)

// NTriplesScanner streams an N-Triples document one statement at a time while
// tracking the exact byte offset of the first unconsumed input byte. That
// offset is the durable resume position a checkpoint records: re-opening the
// input, seeking to Offset(), and continuing with a scanner seeded via
// SetPos yields the same statement stream as an uninterrupted scan.
//
// Offsets advance line by line — after Scan returns, Offset() covers every
// line consumed to produce (or skip past) the returned statement, so it
// always points at a line start (or EOF). Lenient-mode error handling matches
// ReadNTriplesWith: malformed lines are skipped, reported, counted, and the
// scan aborts with ErrTooManyErrors once the budget is exhausted.
type NTriplesScanner struct {
	br   *byteCountReader
	opts Options
	sink errorSink

	line    int
	skipped int64
	triples int64

	start    time.Time
	started  bool
	observed bool
}

// NewNTriplesScanner wraps r. If resuming, the caller must position r at the
// recorded offset first (e.g. io.Seeker.Seek) and then call SetPos so
// offsets and line numbers continue from the checkpointed values.
func NewNTriplesScanner(r io.Reader, opts Options) *NTriplesScanner {
	s := &NTriplesScanner{br: newByteCountReader(r, 64*1024), opts: opts}
	s.sink = errorSink{opts: &s.opts, counter: ntSkipped}
	return s
}

// SetPos seeds the scanner's position counters for a resumed input. base is
// the byte offset the underlying reader was seeked to; line is the number of
// lines already consumed before it.
func (s *NTriplesScanner) SetPos(base int64, line int) {
	s.br.base = base
	s.line = line
}

// Offset returns the byte offset of the first unconsumed input byte.
func (s *NTriplesScanner) Offset() int64 { return s.br.consumed() }

// Line returns the number of input lines consumed so far.
func (s *NTriplesScanner) Line() int { return s.line }

// Triples returns how many statements Scan has produced.
func (s *NTriplesScanner) Triples() int64 { return s.triples }

// Skipped returns how many malformed statements lenient mode dropped.
func (s *NTriplesScanner) Skipped() int64 { return s.skipped }

// Scan returns the next statement. ok is false at end of input. Malformed
// lines abort in strict mode and are skipped in lenient mode; I/O errors
// always abort. The throughput meter is observed once, when the scan
// finishes (either end of input or an abort).
func (s *NTriplesScanner) Scan() (t rdf.Triple, ok bool, err error) {
	if !s.started {
		s.started = true
		s.start = time.Now()
	}
	for {
		raw, rerr := s.br.readLine()
		if rerr != nil && rerr != io.EOF {
			s.observe()
			return rdf.Triple{}, false, rerr
		}
		atEOF := rerr == io.EOF
		if raw == "" && atEOF {
			s.observe()
			return rdf.Triple{}, false, nil
		}
		s.line++
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			if atEOF {
				s.observe()
				return rdf.Triple{}, false, nil
			}
			continue
		}
		tr, perr := parseNTriplesLine(line)
		if perr != nil {
			perr.Line = s.line
			if !s.opts.Lenient {
				s.observe()
				return rdf.Triple{}, false, fmt.Errorf("rio: %w", perr)
			}
			s.skipped++
			if err := s.sink.record(*perr); err != nil {
				s.observe()
				return rdf.Triple{}, false, err
			}
			if atEOF {
				s.observe()
				return rdf.Triple{}, false, nil
			}
			continue
		}
		s.triples++
		return tr, true, nil
	}
}

// observe reports the document's throughput to the ingestion meter exactly
// once per scanner, however the scan ends.
func (s *NTriplesScanner) observe() {
	if s.observed {
		return
	}
	s.observed = true
	ntMeter.Observe(s.triples, time.Since(s.start))
}

// byteCountReader is a buffered line reader that knows how many bytes of the
// underlying stream the lines it returned account for. base holds the offset
// the underlying reader started at (non-zero when resuming mid-file).
type byteCountReader struct {
	r    io.Reader
	buf  []byte
	pos  int // next unread byte in buf
	n    int // valid bytes in buf
	base int64
	read int64 // bytes handed out via readLine
	err  error
}

func newByteCountReader(r io.Reader, size int) *byteCountReader {
	return &byteCountReader{r: r, buf: make([]byte, size)}
}

// consumed returns the stream offset of the first byte readLine has not yet
// returned.
func (b *byteCountReader) consumed() int64 { return b.base + b.read }

// readLine returns the next line including its trailing newline, like
// bufio.Reader.ReadString('\n'): at end of input it returns the final
// (possibly empty) unterminated line together with io.EOF. There is no upper
// bound on line length.
func (b *byteCountReader) readLine() (string, error) {
	var pending []byte
	for {
		if b.pos < b.n {
			if i := bytes.IndexByte(b.buf[b.pos:b.n], '\n'); i >= 0 {
				line := b.buf[b.pos : b.pos+i+1]
				b.pos += i + 1
				b.read += int64(i + 1)
				if pending == nil {
					return string(line), nil
				}
				return string(append(pending, line...)), nil
			}
			pending = append(pending, b.buf[b.pos:b.n]...)
			b.read += int64(b.n - b.pos)
			b.pos = b.n
		}
		if b.err != nil {
			return string(pending), b.err
		}
		n, err := b.r.Read(b.buf)
		b.pos, b.n = 0, n
		if err != nil {
			b.err = err
			if b.err != io.EOF && n == 0 {
				return string(pending), b.err
			}
		}
	}
}
