package rio

import (
	"context"
	"errors"
	"strings"
	"testing"

	"github.com/s3pg/s3pg/internal/rdf"
)

// corruptNTLines mirrors the corruption classes of the fixtures corpus
// (duplicated here because fixtures imports rio).
var corruptNTLines = []string{
	`<http://e.org/x> <http://e.org/name>`,                 // truncated
	`<http://e.org/x> <http://e.org/name> "unterminated .`, // unterminated literal
	`<http://e.org/x> <http://e.org/knows <http://e.org/y> .`,
	`<http://e.org/x> <http://e.org/age> "41"`, // missing '.'
	"\xff\xfe\x00 binary garbage \x80 .",
	`this is not an n-triples statement at all .`,
	`"literal subject" <http://e.org/p> <http://e.org/o> .`, // term kinds violate positions
	strings.Repeat("<<", maxQuotedDepth+2) + " x",           // nesting past the depth guard
}

func TestNTriplesStrictRejectsCorruptLines(t *testing.T) {
	for _, line := range corruptNTLines {
		err := ReadNTriples(strings.NewReader(line+"\n"), func(rdf.Triple) error { return nil })
		if err == nil {
			t.Errorf("strict parse accepted %q", line)
			continue
		}
		var pe *ParseError
		if !errors.As(err, &pe) {
			t.Errorf("error for %q is %T, not a *ParseError: %v", line, err, err)
			continue
		}
		if pe.Line != 1 {
			t.Errorf("ParseError.Line = %d for single-line input %q", pe.Line, line)
		}
	}
}

// TestNTriplesLenientSkipsCorruptLines interleaves every corrupt line with
// clean statements: the lenient reader must deliver exactly the clean triples
// and report exactly the corrupt lines, with accurate line numbers.
func TestNTriplesLenientSkipsCorruptLines(t *testing.T) {
	var b strings.Builder
	cleanLine := `<http://e.org/s> <http://e.org/p> <http://e.org/o%d> .`
	for i, bad := range corruptNTLines {
		b.WriteString(strings.Replace(cleanLine, "%d", string(rune('a'+i)), 1))
		b.WriteByte('\n')
		b.WriteString(bad)
		b.WriteByte('\n')
	}
	var skipped []ParseError
	opts := Options{Lenient: true, OnError: func(e ParseError) { skipped = append(skipped, e) }}
	triples := 0
	err := ReadNTriplesWith(context.Background(), strings.NewReader(b.String()), opts, func(rdf.Triple) error {
		triples++
		return nil
	})
	if err != nil {
		t.Fatalf("lenient parse failed: %v", err)
	}
	if triples != len(corruptNTLines) {
		t.Errorf("delivered %d clean triples, want %d", triples, len(corruptNTLines))
	}
	if len(skipped) != len(corruptNTLines) {
		t.Fatalf("skipped %d statements, want %d", len(skipped), len(corruptNTLines))
	}
	for i, e := range skipped {
		if want := 2 * (i + 1); e.Line != want {
			t.Errorf("skip %d reported line %d, want %d (%v)", i, e.Line, want, &e)
		}
	}
}

func TestNTriplesMaxErrors(t *testing.T) {
	src := strings.Repeat("garbage line\n", 10)
	opts := Options{Lenient: true, MaxErrors: 3}
	err := ReadNTriplesWith(context.Background(), strings.NewReader(src), opts, func(rdf.Triple) error { return nil })
	if !errors.Is(err, ErrTooManyErrors) {
		t.Fatalf("err = %v, want ErrTooManyErrors", err)
	}
}

// TestNTriplesLongLine pins the satellite fix: lines beyond former
// bufio.Scanner token limits parse fine through the bufio.Reader loop.
func TestNTriplesLongLine(t *testing.T) {
	if testing.Short() {
		t.Skip("allocates a 17 MiB line")
	}
	lex := strings.Repeat("a", 17<<20) // > the 16 MiB cap the Scanner-based reader had
	src := `<http://e.org/s> <http://e.org/p> "` + lex + "\" .\n" +
		"<http://e.org/s> <http://e.org/p2> <http://e.org/o> .\n"
	var got []rdf.Triple
	if err := ReadNTriples(strings.NewReader(src), func(tr rdf.Triple) error {
		got = append(got, tr)
		return nil
	}); err != nil {
		t.Fatalf("long line failed: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d triples, want 2", len(got))
	}
	if got[0].O.Value != lex {
		t.Fatalf("long literal corrupted: %d bytes, want %d", len(got[0].O.Value), len(lex))
	}
}

func TestNTriplesContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := ReadNTriplesWith(ctx, strings.NewReader("<a> <b> <c> .\n"), Options{}, func(rdf.Triple) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestTurtleContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := ParseTurtleWith(ctx, "<a> <b> <c> .", Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestTurtleLenientRecovery checks statement-level resynchronization: a
// malformed statement in the middle of a document costs only that statement.
func TestTurtleLenientRecovery(t *testing.T) {
	src := `
@prefix ex: <http://example.org/> .
ex:a ex:p "ok1" .
ex:c undeclared:name "dropped" .
ex:d ex:p "ok2" ; ex:q ex:e .
ex:z ex:p "unterminated string literal .
`
	var skipped []ParseError
	opts := Options{Lenient: true, OnError: func(e ParseError) { skipped = append(skipped, e) }}
	g, err := ParseTurtleWith(context.Background(), src, opts)
	if err != nil {
		t.Fatalf("lenient parse failed: %v", err)
	}
	if len(skipped) != 2 {
		t.Fatalf("skipped %d statements, want 2: %v", len(skipped), skipped)
	}
	want, err := ParseTurtle(`
@prefix ex: <http://example.org/> .
ex:a ex:p "ok1" .
ex:d ex:p "ok2" ; ex:q ex:e .
`)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(want) {
		t.Fatalf("recovered graph has %d triples, want %d", g.Len(), want.Len())
	}
}

// TestTurtleStrictParseErrorPosition checks that strict Turtle failures carry
// usable line information.
func TestTurtleStrictParseErrorPosition(t *testing.T) {
	_, err := ParseTurtle("@prefix ex: <http://example.org/> .\nex:a ex:p %% .")
	if err == nil {
		t.Fatal("expected error")
	}
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("error is %T, not a *ParseError: %v", err, err)
	}
	if pe.Line != 2 {
		t.Fatalf("ParseError.Line = %d, want 2 (%v)", pe.Line, pe)
	}
}

// TestTurtleHandlerErrorPropagatesInLenientMode pins the discrimination
// between parse errors (recoverable) and handler errors (never swallowed).
func TestTurtleHandlerErrorPropagatesInLenientMode(t *testing.T) {
	boom := errors.New("handler boom")
	err := ReadTurtleWith(context.Background(), strings.NewReader("<a> <b> <c> ."),
		Options{Lenient: true}, func(rdf.Triple) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want handler error", err)
	}
}

func TestTurtleDepthGuard(t *testing.T) {
	for _, src := range []string{
		strings.Repeat("[", maxTurtleDepth*2),
		strings.Repeat("(", maxTurtleDepth*2),
		"<s> <p> " + strings.Repeat("<<", maxTurtleDepth*2) + " .",
	} {
		if _, err := ParseTurtle(src); err == nil {
			t.Errorf("hostile nesting %q… accepted", src[:10])
		}
		// Lenient mode must recover from the same input, not crash.
		if _, err := ParseTurtleWith(context.Background(), src, Options{Lenient: true}); err != nil {
			t.Errorf("lenient parse of hostile nesting failed: %v", err)
		}
	}
}
