package rio

import (
	"errors"
	"fmt"

	"github.com/s3pg/s3pg/internal/obs"
)

// Skipped-statement counters for lenient-mode parsing (obs.Default
// registry). They appear in every metrics snapshot, so CLI users can see at
// a glance how much of a dirty input was dropped.
var (
	ntSkipped  = obs.Default.Counter("rio.ntriples.skipped")
	ttlSkipped = obs.Default.Counter("rio.turtle.skipped")
)

// ErrTooManyErrors is returned (wrapped, with counts) by the lenient readers
// once more than Options.MaxErrors malformed statements have been skipped.
// It marks inputs too corrupted to be worth degrading gracefully.
var ErrTooManyErrors = errors.New("too many parse errors")

// ParseError describes one malformed statement: where it was found, what the
// offending input looked like, and why it was rejected. The strict readers
// return it (wrapped) as the parse failure; the lenient readers hand each one
// to Options.OnError and keep going.
type ParseError struct {
	// Line is the 1-based line number of the statement.
	Line int
	// Col is the 1-based byte offset within the statement where parsing
	// failed, when known (0 otherwise).
	Col int
	// Input is the offending line or statement, truncated for display.
	Input string
	// Reason says what was wrong.
	Reason string
}

// Error renders the position, reason, and a snippet of the offending input.
func (e *ParseError) Error() string {
	pos := fmt.Sprintf("line %d", e.Line)
	if e.Col > 0 {
		pos = fmt.Sprintf("line %d:%d", e.Line, e.Col)
	}
	if e.Input == "" {
		return fmt.Sprintf("%s: %s", pos, e.Reason)
	}
	return fmt.Sprintf("%s: %s (near %q)", pos, e.Reason, clip(e.Input, 60))
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}

// DefaultMaxErrors bounds lenient-mode error skipping when Options.MaxErrors
// is left zero: inputs with more malformed statements than this abort with
// ErrTooManyErrors rather than degrade into noise.
const DefaultMaxErrors = 1000

// Options configures the fault tolerance of the readers.
//
// The zero value is strict mode: the first malformed statement aborts the
// parse with a *ParseError. With Lenient set, malformed statements are
// skipped, reported through OnError, and counted in the rio.*.skipped
// observability counters; parsing hard-stops with ErrTooManyErrors once more
// than MaxErrors statements have been skipped.
type Options struct {
	// Lenient selects skip-and-report mode instead of fail-fast.
	Lenient bool
	// MaxErrors caps how many malformed statements lenient mode tolerates.
	// Zero means DefaultMaxErrors; negative means unlimited.
	MaxErrors int
	// OnError, when non-nil, receives every skipped statement's ParseError.
	OnError func(ParseError)
}

// maxErrors resolves the effective error budget.
func (o *Options) maxErrors() int {
	switch {
	case o.MaxErrors == 0:
		return DefaultMaxErrors
	case o.MaxErrors < 0:
		return int(^uint(0) >> 1) // effectively unlimited
	default:
		return o.MaxErrors
	}
}

// errorSink tracks skipped statements against the MaxErrors budget shared by
// both readers.
type errorSink struct {
	opts    *Options
	counter *obs.Counter
	n       int
}

// record reports one skipped statement; the returned error is non-nil once
// the budget is exhausted.
func (s *errorSink) record(pe ParseError) error {
	s.n++
	s.counter.Inc()
	if s.opts.OnError != nil {
		s.opts.OnError(pe)
	}
	if s.n > s.opts.maxErrors() {
		return fmt.Errorf("rio: %w: %d malformed statements exceed the limit of %d (last: %v)",
			ErrTooManyErrors, s.n, s.opts.maxErrors(), &pe)
	}
	return nil
}
