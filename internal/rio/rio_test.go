package rio

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"github.com/s3pg/s3pg/internal/rdf"
)

func TestParseNTriplesLine(t *testing.T) {
	cases := []struct {
		line string
		want rdf.Triple
	}{
		{
			`<http://a/s> <http://a/p> <http://a/o> .`,
			rdf.NewTriple(rdf.NewIRI("http://a/s"), rdf.NewIRI("http://a/p"), rdf.NewIRI("http://a/o")),
		},
		{
			`<http://a/s> <http://a/p> "lit" .`,
			rdf.NewTriple(rdf.NewIRI("http://a/s"), rdf.NewIRI("http://a/p"), rdf.NewLiteral("lit")),
		},
		{
			`<http://a/s> <http://a/p> "5"^^<http://www.w3.org/2001/XMLSchema#integer> .`,
			rdf.NewTriple(rdf.NewIRI("http://a/s"), rdf.NewIRI("http://a/p"), rdf.NewTypedLiteral("5", rdf.XSDInteger)),
		},
		{
			`<http://a/s> <http://a/p> "bonjour"@fr .`,
			rdf.NewTriple(rdf.NewIRI("http://a/s"), rdf.NewIRI("http://a/p"), rdf.NewLangLiteral("bonjour", "fr")),
		},
		{
			`_:b1 <http://a/p> _:b2 .`,
			rdf.NewTriple(rdf.NewBlank("b1"), rdf.NewIRI("http://a/p"), rdf.NewBlank("b2")),
		},
		{
			`<http://a/s> <http://a/p> "say \"hi\"\n" .`,
			rdf.NewTriple(rdf.NewIRI("http://a/s"), rdf.NewIRI("http://a/p"), rdf.NewLiteral("say \"hi\"\n")),
		},
		{
			`<http://a/s> <http://a/p> "été" .`,
			rdf.NewTriple(rdf.NewIRI("http://a/s"), rdf.NewIRI("http://a/p"), rdf.NewLiteral("été")),
		},
	}
	for _, c := range cases {
		got, err := ParseNTriplesLine(c.line)
		if err != nil {
			t.Errorf("ParseNTriplesLine(%q) error: %v", c.line, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseNTriplesLine(%q) = %v, want %v", c.line, got, c.want)
		}
	}
}

func TestParseNTriplesErrors(t *testing.T) {
	bad := []string{
		`<http://a/s> <http://a/p> <http://a/o>`,    // no dot
		`<http://a/s> <http://a/p>`,                 // missing object
		`"lit" <http://a/p> <http://a/o> .`,         // literal subject
		`<http://a/s> _:b <http://a/o> .`,           // blank predicate
		`<http://a/s> <http://a/p> "unterminated .`, // bad literal
	}
	for _, line := range bad {
		if _, err := ParseNTriplesLine(line); err == nil {
			t.Errorf("expected error for %q", line)
		}
	}
}

func TestNTriplesRoundTrip(t *testing.T) {
	g := rdf.NewGraph()
	g.Add(rdf.NewTriple(rdf.NewIRI("http://a/s"), rdf.A, rdf.NewIRI("http://a/T")))
	g.Add(rdf.NewTriple(rdf.NewIRI("http://a/s"), rdf.NewIRI("http://a/name"), rdf.NewLiteral("weird \"chars\"\t\n\\")))
	g.Add(rdf.NewTriple(rdf.NewBlank("x"), rdf.NewIRI("http://a/age"), rdf.NewTypedLiteral("7", rdf.XSDInteger)))
	g.Add(rdf.NewTriple(rdf.NewIRI("http://a/s"), rdf.NewIRI("http://a/label"), rdf.NewLangLiteral("été", "fr")))

	var buf bytes.Buffer
	if err := WriteNTriples(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := LoadNTriples(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(back) {
		t.Fatalf("round trip mismatch:\n%s", buf.String())
	}
}

func TestReadNTriplesSkipsCommentsAndBlanks(t *testing.T) {
	src := "# a comment\n\n<http://a/s> <http://a/p> <http://a/o> .\n   \n# more\n"
	g, err := LoadNTriples(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 1 {
		t.Fatalf("Len = %d, want 1", g.Len())
	}
}

func TestParseTurtleBasics(t *testing.T) {
	src := `
@prefix ex: <http://example.org/> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .

ex:bob a ex:Student, ex:Person ;
    ex:regNo "Bs12" ;
    ex:age 23 ;
    ex:gpa 3.7 ;
    ex:height 1.8e0 ;
    ex:enrolled true ;
    ex:advisedBy ex:alice .

ex:alice ex:name "Alice"@en .
`
	g, err := ParseTurtle(src)
	if err != nil {
		t.Fatal(err)
	}
	ex := func(l string) rdf.Term { return rdf.NewIRI("http://example.org/" + l) }
	wantTriples := []rdf.Triple{
		rdf.NewTriple(ex("bob"), rdf.A, ex("Student")),
		rdf.NewTriple(ex("bob"), rdf.A, ex("Person")),
		rdf.NewTriple(ex("bob"), ex("regNo"), rdf.NewLiteral("Bs12")),
		rdf.NewTriple(ex("bob"), ex("age"), rdf.NewTypedLiteral("23", rdf.XSDInteger)),
		rdf.NewTriple(ex("bob"), ex("gpa"), rdf.NewTypedLiteral("3.7", rdf.XSDDecimal)),
		rdf.NewTriple(ex("bob"), ex("height"), rdf.NewTypedLiteral("1.8e0", rdf.XSDDouble)),
		rdf.NewTriple(ex("bob"), ex("enrolled"), rdf.NewTypedLiteral("true", rdf.XSDBoolean)),
		rdf.NewTriple(ex("bob"), ex("advisedBy"), ex("alice")),
		rdf.NewTriple(ex("alice"), ex("name"), rdf.NewLangLiteral("Alice", "en")),
	}
	if g.Len() != len(wantTriples) {
		t.Fatalf("Len = %d, want %d; got %v", g.Len(), len(wantTriples), g.Triples())
	}
	for _, tr := range wantTriples {
		if !g.Has(tr) {
			t.Errorf("missing triple %v", tr)
		}
	}
}

func TestParseTurtleBlankNodePropertyList(t *testing.T) {
	src := `
@prefix ex: <http://example.org/> .
ex:s ex:knows [ ex:name "Anon" ; ex:age 4 ] .
`
	g, err := ParseTurtle(src)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 3 {
		t.Fatalf("Len = %d, want 3: %v", g.Len(), g.Triples())
	}
	// The blank node must be shared between the three triples.
	ex := func(l string) rdf.Term { return rdf.NewIRI("http://example.org/" + l) }
	objs := g.Objects(ex("s"), ex("knows"))
	if len(objs) != 1 || !objs[0].IsBlank() {
		t.Fatalf("knows object = %v", objs)
	}
	b := objs[0]
	if got := g.Objects(b, ex("name")); len(got) != 1 || got[0] != rdf.NewLiteral("Anon") {
		t.Fatalf("blank node name = %v", got)
	}
}

func TestParseTurtleCollection(t *testing.T) {
	src := `
@prefix ex: <http://example.org/> .
ex:s ex:list ( ex:a ex:b "c" ) .
ex:t ex:list () .
`
	g, err := ParseTurtle(src)
	if err != nil {
		t.Fatal(err)
	}
	ex := func(l string) rdf.Term { return rdf.NewIRI("http://example.org/" + l) }
	first, rest, nilT := rdf.NewIRI(rdf.RDFFirst), rdf.NewIRI(rdf.RDFRest), rdf.NewIRI(rdf.RDFNil)

	// Walk the list from ex:s.
	heads := g.Objects(ex("s"), ex("list"))
	if len(heads) != 1 {
		t.Fatalf("heads = %v", heads)
	}
	var items []rdf.Term
	cell := heads[0]
	for cell != nilT {
		f := g.Objects(cell, first)
		if len(f) != 1 {
			t.Fatalf("cell %v first = %v", cell, f)
		}
		items = append(items, f[0])
		r := g.Objects(cell, rest)
		if len(r) != 1 {
			t.Fatalf("cell %v rest = %v", cell, r)
		}
		cell = r[0]
	}
	want := []rdf.Term{ex("a"), ex("b"), rdf.NewLiteral("c")}
	if len(items) != len(want) {
		t.Fatalf("items = %v", items)
	}
	for i := range want {
		if items[i] != want[i] {
			t.Fatalf("items[%d] = %v, want %v", i, items[i], want[i])
		}
	}
	// Empty collection maps to rdf:nil.
	if got := g.Objects(ex("t"), ex("list")); len(got) != 1 || got[0] != nilT {
		t.Fatalf("empty list = %v", got)
	}
}

func TestParseTurtleSHACLShape(t *testing.T) {
	// The shape of Figure 4e: sh:or with a collection of blank property lists.
	src := `
@prefix sh: <http://www.w3.org/ns/shacl#> .
@prefix ex: <http://example.org/> .
@prefix shape: <http://example.org/shapes/> .

shape:Student a sh:NodeShape ;
  sh:property [
    sh:path ex:advisedBy ;
    sh:or ( [ sh:nodeKind sh:IRI ; sh:class ex:Person ]
            [ sh:nodeKind sh:IRI ; sh:class ex:Professor ] ) ;
    sh:minCount 1 ] ;
  sh:targetClass ex:Student .
`
	g, err := ParseTurtle(src)
	if err != nil {
		t.Fatal(err)
	}
	shape := rdf.NewIRI("http://example.org/shapes/Student")
	if got := g.Objects(shape, rdf.A); len(got) != 1 || got[0] != rdf.NewIRI(rdf.SHNodeShape) {
		t.Fatalf("shape type = %v", got)
	}
	props := g.Objects(shape, rdf.NewIRI(rdf.SHProperty))
	if len(props) != 1 {
		t.Fatalf("property shapes = %v", props)
	}
	ors := g.Objects(props[0], rdf.NewIRI(rdf.SHOr))
	if len(ors) != 1 {
		t.Fatalf("sh:or = %v", ors)
	}
}

func TestParseTurtleErrors(t *testing.T) {
	bad := []string{
		`ex:s ex:p ex:o .`,                               // undeclared prefix
		`@prefix ex: <http://x/> . ex:s ex:p ex:o`,       // missing dot
		`@prefix ex: <http://x/> . ex:s ex:p "open .`,    // unterminated string
		`@prefix ex: <http://x/> . ex:s ex:p ( ex:a  .`,  // unterminated collection
		`@prefix ex: <http://x/> . ex:s ex:p [ ex:q 1 .`, // unterminated bnode list
	}
	for _, src := range bad {
		if _, err := ParseTurtle(src); err == nil {
			t.Errorf("expected parse error for %q", src)
		}
	}
}

func TestTurtleWriterRoundTrip(t *testing.T) {
	src := `
@prefix ex: <http://example.org/> .
ex:bob a ex:Student ;
  ex:name "Bob" ;
  ex:age 23 ;
  ex:advisedBy ex:alice .
ex:alice ex:name "A\"quote" .
`
	g, err := ParseTurtle(src)
	if err != nil {
		t.Fatal(err)
	}
	w := NewTurtleWriter()
	w.Prefix("ex", "http://example.org/")
	var buf bytes.Buffer
	if err := w.Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ParseTurtle(buf.String())
	if err != nil {
		t.Fatalf("re-parse error: %v\noutput:\n%s", err, buf.String())
	}
	if !g.Equal(back) {
		t.Fatalf("turtle round trip mismatch:\n%s", buf.String())
	}
}

// Property: any graph of random triples round-trips through N-Triples.
func TestQuickNTriplesRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g := rdf.NewGraph()
		dts := []string{"", rdf.XSDInteger, rdf.XSDDouble, rdf.XSDDate}
		for i := 0; i <= int(n)%40; i++ {
			s := rdf.NewIRI(fmt.Sprintf("http://x/s%d", rng.Intn(10)))
			p := rdf.NewIRI(fmt.Sprintf("http://x/p%d", rng.Intn(5)))
			var o rdf.Term
			switch rng.Intn(4) {
			case 0:
				o = rdf.NewIRI(fmt.Sprintf("http://x/o%d", rng.Intn(10)))
			case 1:
				o = rdf.NewBlank(fmt.Sprintf("b%d", rng.Intn(5)))
			case 2:
				o = rdf.NewLangLiteral(fmt.Sprintf("v%d\n\"x\"", rng.Intn(9)), "en")
			default:
				dt := dts[rng.Intn(len(dts))]
				o = rdf.NewTypedLiteral(fmt.Sprintf("%d", rng.Intn(100)), dt)
			}
			g.Add(rdf.NewTriple(s, p, o))
		}
		var buf bytes.Buffer
		if err := WriteNTriples(&buf, g); err != nil {
			return false
		}
		back, err := LoadNTriples(&buf)
		if err != nil {
			return false
		}
		return g.Equal(back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
