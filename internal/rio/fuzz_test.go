package rio

import (
	"context"
	"strings"
	"testing"

	"github.com/s3pg/s3pg/internal/rdf"
)

// ntSeeds are representative well-formed and malformed N-Triples lines used
// to seed both line-level and document-level fuzzing.
var ntSeeds = []string{
	`<http://example.org/s> <http://example.org/p> <http://example.org/o> .`,
	`<http://example.org/s> <http://example.org/p> "plain" .`,
	`<http://example.org/s> <http://example.org/p> "typed"^^<http://www.w3.org/2001/XMLSchema#gYear> .`,
	`<http://example.org/s> <http://example.org/p> "tagged"@en-GB .`,
	`_:b1 <http://example.org/p> _:b2 .`,
	`<< <http://example.org/s> <http://example.org/p> "o" >> <http://example.org/certainty> "0.9" .`,
	`# comment`,
	``,
	`<http://example.org/s> <http://example.org/p>`,
	`<http://example.org/s> <http://example.org/p> "unterminated .`,
	`<http://example.org/s> <http://example.org/p> "esc é \q" .`,
	"\xff\xfe not utf8 .",
	strings.Repeat("<<", 100),
}

// FuzzParseNTriplesLine checks that single-line parsing never panics, and
// that every accepted triple round-trips: serializing it and reparsing must
// yield the identical triple.
func FuzzParseNTriplesLine(f *testing.F) {
	for _, s := range ntSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, line string) {
		tr, err := ParseNTriplesLine(line)
		if err != nil {
			return
		}
		back, err := ParseNTriplesLine(tr.String())
		if err != nil {
			t.Fatalf("accepted triple %q does not reparse: %v", tr, err)
		}
		if back != tr {
			t.Fatalf("round trip changed the triple: %v != %v", back, tr)
		}
	})
}

// FuzzReadNTriplesLenient checks the lenient reader invariant: with an
// unlimited error budget every input — however corrupted — parses to
// completion without error, and every line is either a triple or a recorded
// skip.
func FuzzReadNTriplesLenient(f *testing.F) {
	f.Add(strings.Join(ntSeeds, "\n"))
	for _, s := range ntSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		skipped := 0
		opts := Options{Lenient: true, MaxErrors: -1, OnError: func(ParseError) { skipped++ }}
		triples := 0
		err := ReadNTriplesWith(context.Background(), strings.NewReader(src), opts, func(rdf.Triple) error {
			triples++
			return nil
		})
		if err != nil {
			t.Fatalf("lenient unlimited parse failed: %v", err)
		}
		lines := 0
		for _, l := range strings.Split(src, "\n") {
			l = strings.TrimSpace(l)
			if l != "" && !strings.HasPrefix(l, "#") {
				lines++
			}
		}
		if triples+skipped != lines {
			t.Fatalf("%d triples + %d skipped != %d statement lines", triples, skipped, lines)
		}
	})
}

// FuzzReadTurtle checks that the Turtle parser neither panics nor loops on
// arbitrary input, and that the lenient reader's recovery always terminates
// with a nil error under an unlimited budget.
func FuzzReadTurtle(f *testing.F) {
	f.Add("@prefix ex: <http://example.org/> .\nex:s ex:p ex:o ; ex:q \"v\" .")
	f.Add("@prefix ex: <http://example.org/> .\nex:s ex:p ( 1 2.5 1e3 true ) .")
	f.Add("ex:s ex:p ex:o .") // undeclared prefix
	f.Add("<s> <p> [ <q> [ <r> 'x' ] ] .")
	f.Add("<s> <p> \"\"\"long\nstring\"\"\"@en .")
	f.Add("<< <s> <p> <o> >> <q> 1 .")
	f.Add(strings.Repeat("[", 300))
	f.Add(strings.Repeat("(", 300))
	f.Add("\x00\xff @prefix : <x .")
	f.Fuzz(func(t *testing.T, src string) {
		if _, err := ParseTurtleWith(context.Background(), src, Options{}); err != nil {
			// Strict mode may reject; it must only do so via ParseError-based
			// errors, which the lenient invariant below exercises.
			_ = err
		}
		if _, err := ParseTurtleWith(context.Background(), src, Options{Lenient: true, MaxErrors: -1}); err != nil {
			t.Fatalf("lenient unlimited parse failed: %v", err)
		}
	})
}
