// Package faultio provides deterministic, seed-driven fault injection for
// io.Reader/io.Writer pipelines and the filesystem operations behind atomic
// output commits, plus a retry helper with capped exponential backoff and
// jitter for transient sink errors.
//
// Every injected fault is a pure function of the Plan (seed and thresholds)
// and the byte/operation position at which it fires, so a failing run can be
// replayed exactly: the crash-safety tests use this to kill the pipeline at
// byte K, at every checkpoint boundary, and under short writes, and to assert
// that the recovery path always produces either a complete output or none.
package faultio

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
)

// ErrTransient marks an injected error that models a recoverable condition
// (EAGAIN-style): callers wrapping sinks in Retry are expected to succeed on
// a later attempt.
var ErrTransient = errors.New("faultio: transient error")

// ErrInjected marks an injected hard failure (disk fault, truncation): the
// operation will not succeed no matter how often it is retried.
var ErrInjected = errors.New("faultio: injected fault")

// Transient reports whether err models a recoverable condition worth
// retrying: it unwraps to ErrTransient, or implements `Transient() bool`
// (the shape used by net.Error-style temporary conditions).
func Transient(err error) bool {
	if errors.Is(err, ErrTransient) {
		return true
	}
	var t interface{ Transient() bool }
	if errors.As(err, &t) {
		return t.Transient()
	}
	return false
}

// Plan describes the fault schedule of one wrapped reader or writer. The
// zero Plan injects nothing and adds no overhead beyond a method call.
type Plan struct {
	// Seed drives the deterministic pseudo-random choices (short read/write
	// lengths). Two wrappers with equal plans inject identical faults.
	Seed int64

	// ShortEvery truncates every n-th operation to roughly half its length
	// (at least one byte), exercising io.Writer's partial-write contract and
	// io.Reader's partial-read contract. 0 disables.
	ShortEvery int

	// TransientEvery makes every n-th operation fail with ErrTransient
	// without consuming any bytes. 0 disables. Transient faults fire before
	// short ones when both are scheduled for the same operation.
	TransientEvery int

	// FailAtByte injects a hard ErrInjected failure once the cumulative
	// byte count reaches this offset: the operation covering the offset
	// processes the bytes before it and then fails. Negative disables.
	FailAtByte int64

	// FailErr overrides the error returned for the FailAtByte hard fault
	// (ErrInjected when nil). It is returned wrapped, so errors.Is against
	// both FailErr and ErrInjected succeeds only for the chosen error.
	FailErr error
}

// enabled reports whether the plan injects anything at all.
func (p Plan) enabled() bool {
	return p.ShortEvery > 0 || p.TransientEvery > 0 || p.FailAtByte >= 0
}

// state is the shared bookkeeping of one wrapped stream.
type state struct {
	plan Plan
	rng  *rand.Rand
	ops  int64 // operations attempted
	off  int64 // cumulative bytes successfully transferred
	dead bool  // a hard fault fired; all further operations fail
}

func newState(plan Plan) *state {
	if plan.FailAtByte == 0 {
		// The zero Plan must be inert; treat 0 as "disabled" and require
		// callers to use FailAtByte >= 1 (fail before the first byte is
		// modelled by TransientEvery/FailAtByte=1 instead).
		plan.FailAtByte = -1
	}
	return &state{plan: plan, rng: rand.New(rand.NewSource(plan.Seed))}
}

// hardErr builds the hard-fault error for this plan.
func (s *state) hardErr(op string) error {
	s.dead = true
	if s.plan.FailErr != nil {
		return fmt.Errorf("faultio: %s at byte %d: %w", op, s.off, s.plan.FailErr)
	}
	return fmt.Errorf("%w: %s at byte %d", ErrInjected, op, s.off)
}

// begin applies the per-operation schedule to a request of n bytes and
// returns how many bytes the operation may transfer, or an error to fail
// with immediately. limit == n means the operation runs unimpeded.
func (s *state) begin(op string, n int) (limit int, err error) {
	if s.dead {
		return 0, s.hardErr(op)
	}
	s.ops++
	if te := s.plan.TransientEvery; te > 0 && s.ops%int64(te) == 0 {
		return 0, fmt.Errorf("%w: %s at byte %d", ErrTransient, op, s.off)
	}
	limit = n
	if se := s.plan.ShortEvery; se > 0 && s.ops%int64(se) == 0 && n > 1 {
		// Deterministic short operation: between 1 and n/2 bytes.
		limit = 1 + s.rng.Intn(n/2)
	}
	if fa := s.plan.FailAtByte; fa >= 0 {
		if s.off >= fa {
			return 0, s.hardErr(op)
		}
		if remaining := fa - s.off; int64(limit) > remaining {
			limit = int(remaining)
		}
	}
	return limit, nil
}

// Reader wraps an io.Reader with the plan's fault schedule.
type Reader struct {
	r io.Reader
	s *state
}

// NewReader returns a fault-injecting reader over r.
func NewReader(r io.Reader, plan Plan) *Reader {
	return &Reader{r: r, s: newState(plan)}
}

// Offset returns how many bytes have been successfully read through the
// wrapper.
func (f *Reader) Offset() int64 { return f.s.off }

// Read implements io.Reader, applying transient faults, short reads, and the
// hard fail-at-byte fault.
func (f *Reader) Read(p []byte) (int, error) {
	if !f.s.plan.enabled() {
		return f.r.Read(p)
	}
	limit, err := f.s.begin("read", len(p))
	if err != nil {
		return 0, err
	}
	if limit == 0 && len(p) > 0 {
		// The fail-at offset is exactly here: fail without consuming input.
		return 0, f.s.hardErr("read")
	}
	n, err := f.r.Read(p[:limit])
	f.s.off += int64(n)
	return n, err
}

// Writer wraps an io.Writer with the plan's fault schedule.
type Writer struct {
	w io.Writer
	s *state
}

// NewWriter returns a fault-injecting writer over w.
func NewWriter(w io.Writer, plan Plan) *Writer {
	return &Writer{w: w, s: newState(plan)}
}

// Offset returns how many bytes have been successfully written through the
// wrapper.
func (f *Writer) Offset() int64 { return f.s.off }

// Write implements io.Writer. Short writes return n < len(p) with a nil
// error from the underlying writer's perspective but — per the io.Writer
// contract — must return an error; io.ErrShortWrite (wrapped as transient)
// is used so callers retrying via Retry make progress.
func (f *Writer) Write(p []byte) (int, error) {
	if !f.s.plan.enabled() {
		return f.w.Write(p)
	}
	limit, err := f.s.begin("write", len(p))
	if err != nil {
		return 0, err
	}
	if limit == 0 && len(p) > 0 {
		return 0, f.s.hardErr("write")
	}
	n, err := f.w.Write(p[:limit])
	f.s.off += int64(n)
	if err == nil && n < len(p) {
		return n, fmt.Errorf("%w: %w", ErrTransient, io.ErrShortWrite)
	}
	return n, err
}
