package faultio

import (
	"bytes"
	"context"
	"errors"
	"io"
	"strings"
	"testing"
	"time"
)

func TestZeroPlanIsInert(t *testing.T) {
	src := strings.Repeat("abc", 1000)
	r := NewReader(strings.NewReader(src), Plan{})
	got, err := io.ReadAll(r)
	if err != nil || string(got) != src {
		t.Fatalf("zero-plan read: err=%v, %d bytes", err, len(got))
	}
	var buf bytes.Buffer
	w := NewWriter(&buf, Plan{})
	if _, err := io.WriteString(w, src); err != nil {
		t.Fatalf("zero-plan write: %v", err)
	}
	if buf.String() != src {
		t.Fatal("zero-plan write altered data")
	}
}

func TestReaderFailAtByte(t *testing.T) {
	src := strings.Repeat("x", 100)
	r := NewReader(strings.NewReader(src), Plan{FailAtByte: 37})
	got, err := io.ReadAll(r)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	if len(got) != 37 {
		t.Fatalf("want exactly 37 bytes before the fault, got %d", len(got))
	}
	// The fault is sticky: later reads keep failing.
	if _, err := r.Read(make([]byte, 1)); !errors.Is(err, ErrInjected) {
		t.Fatalf("fault not sticky: %v", err)
	}
}

func TestReaderShortAndTransientDeterministic(t *testing.T) {
	src := strings.Repeat("y", 4096)
	read := func() (int, []int, error) {
		r := NewReader(strings.NewReader(src), Plan{Seed: 7, ShortEvery: 2, TransientEvery: 5})
		var sizes []int
		total := 0
		buf := make([]byte, 256)
		for total < len(src) {
			n, err := r.Read(buf)
			total += n
			sizes = append(sizes, n)
			if err != nil {
				if Transient(err) {
					continue
				}
				return total, sizes, err
			}
		}
		return total, sizes, nil
	}
	t1, s1, err1 := read()
	t2, s2, err2 := read()
	if err1 != nil || err2 != nil {
		t.Fatalf("unexpected errors: %v %v", err1, err2)
	}
	if t1 != len(src) || t2 != len(src) {
		t.Fatalf("lost data: %d/%d of %d", t1, t2, len(src))
	}
	if len(s1) != len(s2) {
		t.Fatalf("schedule not deterministic: %d vs %d ops", len(s1), len(s2))
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("op %d: %d vs %d bytes", i, s1[i], s2[i])
		}
	}
}

func TestWriterShortWriteReturnsTransient(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, Plan{Seed: 1, ShortEvery: 1})
	n, err := w.Write([]byte("hello world"))
	if !Transient(err) || !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("want transient short write, got n=%d err=%v", n, err)
	}
	if n >= 11 || n < 1 {
		t.Fatalf("short write wrote %d of 11", n)
	}
	if buf.Len() != n {
		t.Fatalf("underlying writer got %d bytes, reported %d", buf.Len(), n)
	}
}

func TestTransientClassification(t *testing.T) {
	if Transient(ErrInjected) {
		t.Fatal("hard faults must not be transient")
	}
	if !Transient(ErrTransient) {
		t.Fatal("ErrTransient must be transient")
	}
	if Transient(nil) {
		t.Fatal("nil is not transient")
	}
}

func TestRetryRecoversTransient(t *testing.T) {
	var slept []time.Duration
	p := RetryPolicy{
		MaxAttempts: 5, BaseDelay: 10 * time.Millisecond,
		MaxDelay: 40 * time.Millisecond, Jitter: 0,
		Sleep: func(d time.Duration) { slept = append(slept, d) },
	}
	calls := 0
	err := Retry(context.Background(), p, func() error {
		calls++
		if calls < 4 {
			return ErrTransient
		}
		return nil
	})
	if err != nil {
		t.Fatalf("retry failed: %v", err)
	}
	if calls != 4 {
		t.Fatalf("want 4 calls, got %d", calls)
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond}
	if len(slept) != len(want) {
		t.Fatalf("want %d sleeps, got %v", len(want), slept)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Fatalf("sleep %d: want %v, got %v (capped exponential backoff)", i, want[i], slept[i])
		}
	}
}

func TestRetryBackoffCap(t *testing.T) {
	var slept []time.Duration
	p := RetryPolicy{
		MaxAttempts: 6, BaseDelay: 10 * time.Millisecond,
		MaxDelay: 25 * time.Millisecond, Jitter: 0,
		Sleep: func(d time.Duration) { slept = append(slept, d) },
	}
	err := Retry(context.Background(), p, func() error { return ErrTransient })
	if err == nil || !errors.Is(err, ErrTransient) {
		t.Fatalf("want exhausted transient error, got %v", err)
	}
	for i, d := range slept {
		if d > 25*time.Millisecond {
			t.Fatalf("sleep %d exceeds cap: %v", i, d)
		}
	}
	if last := slept[len(slept)-1]; last != 25*time.Millisecond {
		t.Fatalf("backoff did not reach the cap: %v", last)
	}
}

func TestRetryJitterDeterministicPerSeed(t *testing.T) {
	schedule := func(seed int64) []time.Duration {
		var slept []time.Duration
		p := RetryPolicy{
			MaxAttempts: 4, BaseDelay: 100 * time.Millisecond,
			MaxDelay: time.Second, Jitter: 0.5, Seed: seed,
			Sleep: func(d time.Duration) { slept = append(slept, d) },
		}
		Retry(context.Background(), p, func() error { return ErrTransient })
		return slept
	}
	a, b := schedule(42), schedule(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different schedule: %v vs %v", a, b)
		}
	}
	c := schedule(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter (suspicious)")
	}
}

func TestRetryHardErrorNotRetried(t *testing.T) {
	calls := 0
	err := Retry(context.Background(), RetryPolicy{Sleep: func(time.Duration) {}}, func() error {
		calls++
		return ErrInjected
	})
	if !errors.Is(err, ErrInjected) || calls != 1 {
		t.Fatalf("hard error must fail immediately: calls=%d err=%v", calls, err)
	}
}

func TestRetryContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Retry(ctx, RetryPolicy{}, func() error { return ErrTransient })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestRetryCancelDuringBackoffReturnsCause: cancelling mid-backoff must
// interrupt the sleep promptly and surface context.Cause, not wait out the
// schedule — a drain's cause-carrying cancellation depends on both.
func TestRetryCancelDuringBackoffReturnsCause(t *testing.T) {
	cause := errors.New("drain in progress")
	ctx, cancel := context.WithCancelCause(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel(cause)
	}()
	p := RetryPolicy{MaxAttempts: 3, BaseDelay: time.Hour, MaxDelay: time.Hour}
	start := time.Now()
	err := Retry(ctx, p, func() error { return ErrTransient })
	if !errors.Is(err, cause) {
		t.Fatalf("want the cancellation cause, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation waited out the backoff: %v", elapsed)
	}
}

// TestRetryCancelInterruptsCustomSleep: a custom Sleep (e.g. a test clock or
// a Retry-After-honoring sleeper) must not be able to block cancellation —
// Retry returns the cause even while the sleeper is still asleep.
func TestRetryCancelInterruptsCustomSleep(t *testing.T) {
	cause := errors.New("shutdown requested")
	ctx, cancel := context.WithCancelCause(context.Background())
	block := make(chan struct{})
	p := RetryPolicy{
		MaxAttempts: 3,
		Sleep:       func(time.Duration) { <-block },
	}
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel(cause)
	}()
	defer close(block)
	start := time.Now()
	err := Retry(ctx, p, func() error { return ErrTransient })
	if !errors.Is(err, cause) {
		t.Fatalf("want the cancellation cause, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("custom sleeper held cancellation hostage: %v", elapsed)
	}
}

// TestRetryPreCanceledReturnsCause: a context already canceled with a cause
// makes Retry return that cause without even calling fn.
func TestRetryPreCanceledReturnsCause(t *testing.T) {
	cause := errors.New("already draining")
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(cause)
	calls := 0
	err := Retry(ctx, RetryPolicy{}, func() error { calls++; return ErrTransient })
	if !errors.Is(err, cause) || calls != 0 {
		t.Fatalf("want cause with no attempts, got err=%v calls=%d", err, calls)
	}
}

// TestRetryOnRetryHook: the per-operation hook observes every scheduled
// retry with its 1-based attempt number and the triggering error, and is not
// invoked on the final give-up or on hard errors.
func TestRetryOnRetryHook(t *testing.T) {
	var attempts []int
	var lastErr error
	p := RetryPolicy{
		MaxAttempts: 4,
		Sleep:       func(time.Duration) {},
		OnRetry: func(attempt int, err error) {
			attempts = append(attempts, attempt)
			lastErr = err
		},
	}
	err := Retry(context.Background(), p, func() error { return ErrTransient })
	if err == nil {
		t.Fatal("permanent transient failure must exhaust the budget")
	}
	// 4 attempts: retries scheduled after attempts 1, 2, 3; attempt 4 gives up.
	if len(attempts) != 3 || attempts[0] != 1 || attempts[2] != 3 {
		t.Fatalf("hook saw attempts %v, want [1 2 3]", attempts)
	}
	if !errors.Is(lastErr, ErrTransient) {
		t.Fatalf("hook error: %v", lastErr)
	}

	// Success on the first try never invokes the hook.
	attempts = nil
	if err := Retry(context.Background(), p, func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	if len(attempts) != 0 {
		t.Fatalf("hook invoked on immediate success: %v", attempts)
	}

	// Hard errors fail immediately without a scheduled retry.
	attempts = nil
	Retry(context.Background(), p, func() error { return ErrInjected })
	if len(attempts) != 0 {
		t.Fatalf("hook invoked for a non-transient error: %v", attempts)
	}
}

// TestParseFS: the S3PG_FAULT_FS spec round-trips into the FS knobs, and
// malformed specs are rejected.
func TestParseFS(t *testing.T) {
	fs, err := ParseFS("seed=7,shortevery=3,failsync=2,failsyncdir=1,fstransientevery=5")
	if err != nil {
		t.Fatal(err)
	}
	if fs.Plan.Seed != 7 || fs.Plan.ShortEvery != 3 || fs.FailSync != 2 ||
		fs.FailSyncDir != 1 || fs.TransientEvery != 5 {
		t.Fatalf("parsed FS: %+v", fs)
	}
	for _, bad := range []string{"nonsense", "seed=x", "unknown=1"} {
		if _, err := ParseFS(bad); err == nil {
			t.Fatalf("spec %q accepted", bad)
		}
	}
}

// TestFSTransientEvery: the shared-counter FS fault is transient (retryable)
// and recurring, so a retried atomic commit eventually succeeds — the
// property the server chaos matrix depends on.
func TestFSTransientEvery(t *testing.T) {
	fs := &FS{TransientEvery: 2}
	fails, oks := 0, 0
	for i := 0; i < 8; i++ {
		err := fs.Rename("/nonexistent/a", "/nonexistent/b")
		if Transient(err) {
			fails++
		} else if err != nil {
			oks++ // real rename error from the bogus path: the fault did not fire
		}
	}
	if fails != 4 || oks != 4 {
		t.Fatalf("every-2nd schedule fired %d/8 times (%d passed through)", fails, oks)
	}
}
