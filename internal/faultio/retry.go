package faultio

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"github.com/s3pg/s3pg/internal/obs"
)

// Retry observability counters (obs.Default registry): attempts beyond the
// first, and operations abandoned after exhausting the budget.
var (
	cRetryAttempts = obs.Default.Counter("faultio.retry.attempts")
	cRetryGiveups  = obs.Default.Counter("faultio.retry.giveups")
)

// RetryPolicy bounds a capped exponential backoff with proportional jitter.
// The zero value is usable and resolves to DefaultRetryPolicy's fields.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries (first call included).
	// Zero means DefaultRetryPolicy.MaxAttempts; 1 disables retrying.
	MaxAttempts int
	// BaseDelay is the wait before the first retry; each further retry
	// doubles it until MaxDelay caps the growth.
	BaseDelay time.Duration
	// MaxDelay caps the per-retry backoff (before jitter).
	MaxDelay time.Duration
	// Jitter is the fraction of the delay randomized around it: a delay d
	// becomes d * (1 - Jitter/2 + Jitter*u) for uniform u in [0,1). Zero
	// means no jitter.
	Jitter float64
	// Seed drives the jitter PRNG, making schedules reproducible. The zero
	// seed is a valid fixed seed.
	Seed int64
	// Sleep replaces time.Sleep, letting tests run the schedule against a
	// deterministic clock. Nil means time.Sleep (interruptible via ctx).
	Sleep func(time.Duration)
	// OnRetry, when non-nil, is invoked each time a transient failure is
	// scheduled for another attempt, before the backoff sleep: attempt is
	// the 1-based number of the try that just failed and err its error.
	// Callers use it to log or count per-operation retry storms instead of
	// relying on the global faultio.retry.attempts counter alone.
	OnRetry func(attempt int, err error)
}

// DefaultRetryPolicy is the policy used when fields are left zero: five
// attempts starting at 10ms, doubling to a 500ms cap, with 50% jitter.
var DefaultRetryPolicy = RetryPolicy{
	MaxAttempts: 5,
	BaseDelay:   10 * time.Millisecond,
	MaxDelay:    500 * time.Millisecond,
	Jitter:      0.5,
}

// resolve fills zero fields from DefaultRetryPolicy.
func (p RetryPolicy) resolve() RetryPolicy {
	if p.MaxAttempts == 0 {
		p.MaxAttempts = DefaultRetryPolicy.MaxAttempts
	}
	if p.BaseDelay == 0 {
		p.BaseDelay = DefaultRetryPolicy.BaseDelay
	}
	if p.MaxDelay == 0 {
		p.MaxDelay = DefaultRetryPolicy.MaxDelay
	}
	return p
}

// Retry runs fn until it succeeds, returns a non-transient error, the
// attempt budget is exhausted, or ctx ends. Only errors for which
// Transient reports true are retried; anything else is returned as-is so
// hard faults surface immediately.
//
// Cancellation is honored between attempts and during every backoff sleep,
// custom Sleep implementations included: a canceled context makes Retry
// return promptly with context.Cause(ctx), so a drain (whose cancellation
// carries its own cause) is never held hostage by a backoff schedule.
func Retry(ctx context.Context, p RetryPolicy, fn func() error) error {
	p = p.resolve()
	var rng *rand.Rand
	if p.Jitter > 0 {
		rng = rand.New(rand.NewSource(p.Seed))
	}
	delay := p.BaseDelay
	var err error
	for attempt := 1; ; attempt++ {
		if ctx.Err() != nil {
			return context.Cause(ctx)
		}
		err = fn()
		if err == nil || !Transient(err) {
			return err
		}
		if attempt >= p.MaxAttempts {
			cRetryGiveups.Inc()
			return fmt.Errorf("faultio: giving up after %d attempts: %w", attempt, err)
		}
		cRetryAttempts.Inc()
		if p.OnRetry != nil {
			p.OnRetry(attempt, err)
		}
		d := delay
		if rng != nil {
			d = time.Duration(float64(d) * (1 - p.Jitter/2 + p.Jitter*rng.Float64()))
		}
		if err := sleepInterruptible(ctx, p.Sleep, d); err != nil {
			return err
		}
		if delay *= 2; delay > p.MaxDelay {
			delay = p.MaxDelay
		}
	}
}

// sleepInterruptible waits d using sleep (time.Sleep when nil), returning
// early with the cancellation cause if ctx ends first. A custom sleeper runs
// on its own goroutine so even a deterministic test clock cannot block a
// cancellation from being observed.
func sleepInterruptible(ctx context.Context, sleep func(time.Duration), d time.Duration) error {
	if sleep == nil {
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-ctx.Done():
			return context.Cause(ctx)
		case <-t.C:
			return nil
		}
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		sleep(d)
	}()
	select {
	case <-ctx.Done():
		return context.Cause(ctx)
	case <-done:
		return nil
	}
}
