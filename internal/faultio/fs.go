package faultio

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"

	"github.com/s3pg/s3pg/internal/ckpt"
)

// FS is a fault-injecting ckpt.FS: it wraps the real filesystem, applies a
// write Plan to every file created through it, and can fail the n-th
// create/sync/rename/dir-sync operation — the exact failure points of an
// atomic commit. The zero value injects nothing. FS is safe for concurrent
// use (the server commits from many workers through one FS); the per-file
// write Plans remain independent per created file.
type FS struct {
	// Plan is applied to the data written into each created file.
	Plan Plan
	// FailCreate, FailSync, FailRename, FailSyncDir fail the n-th such
	// operation (1-based) with ErrInjected. 0 disables.
	FailCreate, FailSync, FailRename, FailSyncDir int
	// TransientEvery makes every n-th filesystem operation (creates, syncs,
	// renames, and dir syncs share one counter) fail with ErrTransient — a
	// recoverable fault that a retry with backoff eventually clears, unlike
	// the per-file Plan faults whose schedule restarts with every new temp
	// file. 0 disables.
	TransientEvery int

	mu                                sync.Mutex
	fsOps                             int
	creates, syncs, renames, dirSyncs int
}

// nth reports whether this occurrence (post-increment of *count) is the one
// scheduled to fail. Callers must hold f.mu.
func nth(count *int, fail int) bool {
	*count++
	return fail > 0 && *count == fail
}

// op applies the shared-counter transient schedule and the per-kind hard
// schedule to one filesystem operation, returning the error to inject or nil.
func (f *FS) op(kind string, count *int, fail int, detail string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.fsOps++
	if te := f.TransientEvery; te > 0 && f.fsOps%te == 0 {
		return fmt.Errorf("%w: %s %s", ErrTransient, kind, detail)
	}
	if nth(count, fail) {
		return fmt.Errorf("%w: %s %s", ErrInjected, kind, detail)
	}
	return nil
}

// CreateTemp implements ckpt.FS.
func (f *FS) CreateTemp(dir, pattern string) (ckpt.File, error) {
	if err := f.op("create in", &f.creates, f.FailCreate, dir); err != nil {
		return nil, err
	}
	file, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, w: NewWriter(file, f.Plan), fs: f}, nil
}

// Rename implements ckpt.FS.
func (f *FS) Rename(oldpath, newpath string) error {
	if err := f.op("rename", &f.renames, f.FailRename, newpath); err != nil {
		return err
	}
	return os.Rename(oldpath, newpath)
}

// Remove implements ckpt.FS.
func (f *FS) Remove(name string) error { return os.Remove(name) }

// Chmod implements ckpt.FS.
func (f *FS) Chmod(name string, mode os.FileMode) error { return os.Chmod(name, mode) }

// SyncDir implements ckpt.FS.
func (f *FS) SyncDir(dir string) error {
	if err := f.op("sync dir", &f.dirSyncs, f.FailSyncDir, dir); err != nil {
		return err
	}
	return ckpt.SyncDir(dir)
}

// faultFile routes writes through the fault-injecting writer and syncs
// through the FS's sync schedule.
type faultFile struct {
	*os.File
	w  *Writer
	fs *FS
}

func (f *faultFile) Write(p []byte) (int, error) { return f.w.Write(p) }

func (f *faultFile) Sync() error {
	if err := f.fs.op("sync", &f.fs.syncs, f.fs.FailSync, f.Name()); err != nil {
		return err
	}
	return f.File.Sync()
}

// ParseFS builds a fault-injecting FS from a "k=v,k=v" spec — the format of
// the S3PG_FAULT_FS environment hook shared by cmd/s3pg and cmd/s3pgd, e.g.
// "seed=7,shortevery=3,failsync=1" or "fstransientevery=4".
func ParseFS(spec string) (*FS, error) {
	fsys := &FS{}
	for _, kv := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return nil, fmt.Errorf("faultio: malformed entry %q", kv)
		}
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("faultio: entry %q: %v", kv, err)
		}
		switch k {
		case "seed":
			fsys.Plan.Seed = n
		case "shortevery":
			fsys.Plan.ShortEvery = int(n)
		case "transientevery":
			fsys.Plan.TransientEvery = int(n)
		case "failat":
			fsys.Plan.FailAtByte = n
		case "failcreate":
			fsys.FailCreate = int(n)
		case "failsync":
			fsys.FailSync = int(n)
		case "failrename":
			fsys.FailRename = int(n)
		case "failsyncdir":
			fsys.FailSyncDir = int(n)
		case "fstransientevery":
			fsys.TransientEvery = int(n)
		default:
			return nil, fmt.Errorf("faultio: unknown key %q", k)
		}
	}
	return fsys, nil
}
