package faultio

import (
	"fmt"
	"os"

	"github.com/s3pg/s3pg/internal/ckpt"
)

// FS is a fault-injecting ckpt.FS: it wraps the real filesystem, applies a
// write Plan to every file created through it, and can fail the n-th
// create/sync/rename operation — the exact failure points of an atomic
// commit. The zero value injects nothing.
type FS struct {
	// Plan is applied to the data written into each created file.
	Plan Plan
	// FailCreate, FailSync, FailRename fail the n-th such operation
	// (1-based) with ErrInjected. 0 disables.
	FailCreate, FailSync, FailRename int

	creates, syncs, renames int
}

// nth reports whether this occurrence (post-increment of *count) is the one
// scheduled to fail.
func nth(count *int, fail int) bool {
	*count++
	return fail > 0 && *count == fail
}

// CreateTemp implements ckpt.FS.
func (f *FS) CreateTemp(dir, pattern string) (ckpt.File, error) {
	if nth(&f.creates, f.FailCreate) {
		return nil, fmt.Errorf("%w: create in %s", ErrInjected, dir)
	}
	file, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, w: NewWriter(file, f.Plan), fs: f}, nil
}

// Rename implements ckpt.FS.
func (f *FS) Rename(oldpath, newpath string) error {
	if nth(&f.renames, f.FailRename) {
		return fmt.Errorf("%w: rename %s", ErrInjected, newpath)
	}
	return os.Rename(oldpath, newpath)
}

// Remove implements ckpt.FS.
func (f *FS) Remove(name string) error { return os.Remove(name) }

// Chmod implements ckpt.FS.
func (f *FS) Chmod(name string, mode os.FileMode) error { return os.Chmod(name, mode) }

// faultFile routes writes through the fault-injecting writer and syncs
// through the FS's sync schedule.
type faultFile struct {
	*os.File
	w  *Writer
	fs *FS
}

func (f *faultFile) Write(p []byte) (int, error) { return f.w.Write(p) }

func (f *faultFile) Sync() error {
	if nth(&f.fs.syncs, f.fs.FailSync) {
		return fmt.Errorf("%w: sync %s", ErrInjected, f.Name())
	}
	return f.File.Sync()
}
