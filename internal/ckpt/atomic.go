// Package ckpt provides the crash-safety substrate of the pipeline: atomic
// output commits (temp file in the destination directory → Sync → Rename, so
// a reader of the destination path never observes a torn file) and a
// CRC-checksummed, versioned checkpoint file recording how far a
// transformation got, so an interrupted run can resume instead of starting
// over. The soundness of prefix resume rests on Prop. 4.3 (monotonicity):
// the transformation of a prefix of the input is a valid sub-graph of the
// transformation of the whole input, so committed checkpoint state never has
// to be retracted.
package ckpt

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"github.com/s3pg/s3pg/internal/obs"
)

// Commit observability counters (obs.Default registry).
var (
	cCommits      = obs.Default.Counter("ckpt.commits")
	cCommitBytes  = obs.Default.Counter("ckpt.commit_bytes")
	cCommitAborts = obs.Default.Counter("ckpt.commit_aborts")
)

// File is the writable handle the atomic committer needs: the subset of
// *os.File it uses, so tests can substitute fault-injecting files.
type File interface {
	io.Writer
	Sync() error
	Close() error
	Name() string
}

// FS abstracts the filesystem operations behind an atomic commit. OSFS is
// the real implementation; internal/faultio provides a fault-injecting one.
type FS interface {
	CreateTemp(dir, pattern string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	Chmod(name string, mode os.FileMode) error
	// SyncDir fsyncs the directory itself, making a preceding rename in it
	// durable: without it, a power loss after the rename can roll the
	// directory entry back to the old file even though the data blocks of
	// the new one are on disk.
	SyncDir(dir string) error
}

// osFS is the passthrough FS over the real filesystem.
type osFS struct{}

func (osFS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) Chmod(name string, mode os.FileMode) error    { return os.Chmod(name, mode) }
func (osFS) SyncDir(dir string) error                     { return SyncDir(dir) }

// SyncDir opens dir and fsyncs it, flushing directory entries (renames,
// creates) to stable storage.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// OSFS is the real filesystem.
var OSFS FS = osFS{}

// WriteFileAtomic writes the output produced by fn to path atomically: the
// bytes go to a temporary file in path's directory, are flushed and fsynced,
// the file is renamed over path only after everything succeeded, and the
// parent directory is fsynced so the rename itself survives power loss. On
// any failure before the rename the temporary file is removed and path is
// left untouched — a reader of path therefore observes either the previous
// complete file (or its absence) or the new complete file, never a prefix.
func WriteFileAtomic(path string, perm os.FileMode, fn func(io.Writer) error) error {
	return WriteFileAtomicFS(OSFS, path, perm, fn)
}

// WriteFileAtomicFS is WriteFileAtomic over an explicit FS, the seam the
// fault-injection tests use to prove the no-torn-outputs property.
func WriteFileAtomicFS(fsys FS, path string, perm os.FileMode, fn func(io.Writer) error) (err error) {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	f, err := fsys.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return fmt.Errorf("ckpt: atomic %s: %w", path, err)
	}
	tmp := f.Name()
	committed := false
	var written int64
	defer func() {
		if !committed {
			cCommitAborts.Inc()
			fsys.Remove(tmp) // best effort; the temp name never collides with path
		}
	}()
	bw := bufio.NewWriterSize(countWriter{f, &written}, 1<<16)
	if err := fn(bw); err != nil {
		f.Close()
		return fmt.Errorf("ckpt: atomic %s: %w", path, err)
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("ckpt: atomic %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("ckpt: atomic %s: sync: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("ckpt: atomic %s: close: %w", path, err)
	}
	if err := fsys.Chmod(tmp, perm); err != nil {
		return fmt.Errorf("ckpt: atomic %s: chmod: %w", path, err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		return fmt.Errorf("ckpt: atomic %s: rename: %w", path, err)
	}
	// The rename happened, so the temp file no longer exists under its old
	// name: the abort cleanup must not run even if the directory sync below
	// fails (the new content is visible, just not yet durable).
	committed = true
	if err := fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("ckpt: atomic %s: sync dir: %w", path, err)
	}
	cCommits.Inc()
	cCommitBytes.Add(written)
	return nil
}

// countWriter feeds the commit-bytes counter as data flows to the file.
type countWriter struct {
	w io.Writer
	n *int64
}

func (c countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	*c.n += int64(n)
	return n, err
}
