package ckpt_test

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/s3pg/s3pg/internal/ckpt"
	"github.com/s3pg/s3pg/internal/faultio"
)

func sample() *ckpt.Checkpoint {
	return &ckpt.Checkpoint{
		InputPath: "data.nt", InputSize: 123456, ByteOffset: 4096,
		Lines: 100, Statements: 98, Skipped: 2,
		Mode: "parsimonious", Lenient: true, ShapesPath: "shapes.ttl",
		Nodes: 40, Edges: 60, KVProps: 7, Degraded: 1,
		SchemaDDL: "GRAPH TYPE LOOSE;\n",
		NodesCSV:  []byte("0,Person,iri\x1fs:http://x/a\n"),
		EdgesCSV:  []byte("0,0,1,knows,\n"),
		FallbackRoutes: [][2]string{
			{"Person", "http://x/undeclared"},
		},
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	want := sample()
	if err := ckpt.Save(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := ckpt.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.InputPath != want.InputPath || got.ByteOffset != want.ByteOffset ||
		got.Statements != want.Statements || got.Mode != want.Mode ||
		got.Lenient != want.Lenient || got.Nodes != want.Nodes ||
		!bytes.Equal(got.NodesCSV, want.NodesCSV) ||
		!bytes.Equal(got.EdgesCSV, want.EdgesCSV) ||
		got.SchemaDDL != want.SchemaDDL ||
		len(got.FallbackRoutes) != 1 || got.FallbackRoutes[0] != want.FallbackRoutes[0] {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

// TestCheckpointCorruptionDetected flips every byte of a valid checkpoint in
// turn (sampled) and verifies no corrupted variant loads successfully.
func TestCheckpointCorruptionDetected(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().Encode(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for i := 0; i < len(raw); i += 7 {
		mut := append([]byte(nil), raw...)
		mut[i] ^= 0x40
		if _, err := ckpt.Decode(bytes.NewReader(mut)); err == nil {
			t.Fatalf("flipped byte %d, checkpoint still loaded", i)
		}
	}
}

func TestCheckpointTruncationDetected(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().Encode(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, n := range []int{0, 3, len(raw) / 2, len(raw) - 1} {
		if _, err := ckpt.Decode(bytes.NewReader(raw[:n])); err == nil {
			t.Fatalf("truncated to %d bytes, checkpoint still loaded", n)
		}
	}
}

func TestCheckpointBadMagicAndVersion(t *testing.T) {
	if _, err := ckpt.Decode(strings.NewReader("not a checkpoint at all, definitely")); !errors.Is(err, ckpt.ErrBadMagic) {
		t.Fatalf("want ErrBadMagic, got %v", err)
	}
	var buf bytes.Buffer
	if err := sample().Encode(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[8] = 99 // version field
	if _, err := ckpt.Decode(bytes.NewReader(raw)); err == nil {
		t.Fatal("future version accepted")
	}
}

func TestWriteFileAtomicReplacesWhole(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	if err := ckpt.WriteFileAtomic(path, 0o644, func(w io.Writer) error {
		_, err := io.WriteString(w, "first version\n")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := ckpt.WriteFileAtomic(path, 0o600, func(w io.Writer) error {
		_, err := io.WriteString(w, "second version\n")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "second version\n" {
		t.Fatalf("content: %q", got)
	}
	fi, _ := os.Stat(path)
	if fi.Mode().Perm() != 0o600 {
		t.Fatalf("perm: %v", fi.Mode())
	}
}

func TestWriteFileAtomicProducerErrorLeavesPrevious(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	if err := os.WriteFile(path, []byte("previous"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("producer failed")
	err := ckpt.WriteFileAtomic(path, 0o644, func(w io.Writer) error {
		io.WriteString(w, "partial data that must never land")
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("want producer error, got %v", err)
	}
	assertOnly(t, dir, path, "previous")
}

// TestWriteFileAtomicFaults drives the atomic committer through every
// injected failure point — create, short/transient/hard writes, sync,
// rename — and asserts the destination is always either absent or the
// previous complete content, and no temp litter survives.
func TestWriteFileAtomicFaults(t *testing.T) {
	cases := []struct {
		name string
		fs   *faultio.FS
	}{
		{"create fails", &faultio.FS{FailCreate: 1}},
		{"hard write fault", &faultio.FS{Plan: faultio.Plan{FailAtByte: 10}}},
		{"sync fails", &faultio.FS{FailSync: 1}},
		{"rename fails", &faultio.FS{FailRename: 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "out.txt")
			if err := os.WriteFile(path, []byte("previous"), 0o644); err != nil {
				t.Fatal(err)
			}
			err := ckpt.WriteFileAtomicFS(tc.fs, path, 0o644, func(w io.Writer) error {
				_, werr := io.WriteString(w, strings.Repeat("new content ", 100))
				return werr
			})
			if err == nil {
				t.Fatal("injected fault did not surface")
			}
			assertOnly(t, dir, path, "previous")
		})
	}
}

// TestWriteFileAtomicSyncsParentDir: the rename alone is not durable across
// power loss — the committer must fsync the parent directory afterwards. An
// injected dir-sync fault must surface as a commit error (the content is
// visible but its durability is unknown), and the abort cleanup must not
// remove the already-renamed destination.
func TestWriteFileAtomicSyncsParentDir(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	fs := &faultio.FS{FailSyncDir: 1}
	err := ckpt.WriteFileAtomicFS(fs, path, 0o644, func(w io.Writer) error {
		_, werr := io.WriteString(w, "renamed but not durable")
		return werr
	})
	if err == nil {
		t.Fatal("injected dir-sync fault did not surface")
	}
	if !strings.Contains(err.Error(), "sync dir") {
		t.Fatalf("error does not identify the dir sync: %v", err)
	}
	// The rename preceded the fault: the destination exists and is complete.
	got, rerr := os.ReadFile(path)
	if rerr != nil || string(got) != "renamed but not durable" {
		t.Fatalf("destination after dir-sync fault: %q, %v", got, rerr)
	}
	assertNoTemp(t, dir)

	// A second commit through the same FS (the fault was one-shot) succeeds,
	// proving the dir sync runs on the success path too.
	if err := ckpt.WriteFileAtomicFS(fs, path, 0o644, func(w io.Writer) error {
		_, werr := io.WriteString(w, "durable now")
		return werr
	}); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "durable now" {
		t.Fatalf("content after retried commit: %q", got)
	}
}

// TestWriteFileAtomicShortWritesSucceed: short writes are a normal kernel
// behaviour, not a failure; bufio + the io.Writer contract must absorb them
// so the commit still lands bit-exact.
func TestWriteFileAtomicShortWritesSucceed(t *testing.T) {
	// Note: bufio.Writer aborts on short writes (io.ErrShortWrite), so the
	// committer surfaces them as an error and aborts cleanly rather than
	// committing a prefix — absence of torn output is what matters.
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	fs := &faultio.FS{Plan: faultio.Plan{Seed: 3, ShortEvery: 1}}
	err := ckpt.WriteFileAtomicFS(fs, path, 0o644, func(w io.Writer) error {
		_, werr := io.WriteString(w, strings.Repeat("payload ", 50))
		return werr
	})
	if err == nil {
		// If the environment absorbed the short writes, the file must be
		// complete.
		got, rerr := os.ReadFile(path)
		if rerr != nil || string(got) != strings.Repeat("payload ", 50) {
			t.Fatalf("commit reported success but content is wrong: %v", rerr)
		}
		return
	}
	if _, serr := os.Stat(path); !os.IsNotExist(serr) {
		t.Fatalf("aborted commit left the destination: %v", serr)
	}
	assertNoTemp(t, dir)
}

// assertOnly checks path holds exactly want and dir has no temp litter.
func assertOnly(t *testing.T, dir, path, want string) {
	t.Helper()
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("destination unreadable after aborted commit: %v", err)
	}
	if string(got) != want {
		t.Fatalf("destination content changed by aborted commit: %q", got)
	}
	assertNoTemp(t, dir)
}

func assertNoTemp(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("temp file left behind: %s", e.Name())
		}
	}
}

func ExampleWriteFileAtomic() {
	dir, _ := os.MkdirTemp("", "ckpt")
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "nodes.csv")
	_ = ckpt.WriteFileAtomic(path, 0o644, func(w io.Writer) error {
		_, err := io.WriteString(w, "0,Person,...\n")
		return err
	})
	data, _ := os.ReadFile(path)
	fmt.Print(string(data))
	// Output: 0,Person,...
}
