package ckpt

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"github.com/s3pg/s3pg/internal/obs"
)

// Checkpoint observability counters (obs.Default registry).
var (
	cSaves     = obs.Default.Counter("ckpt.saves")
	cSaveBytes = obs.Default.Counter("ckpt.save_bytes")
	cLoads     = obs.Default.Counter("ckpt.loads")
)

// Checkpoint file format, version 1 (all integers little-endian):
//
//	offset  size  field
//	0       8     magic "S3PGCKP1"
//	8       4     format version (1)
//	12      8     payload length n
//	20      n     payload: the Checkpoint struct as JSON
//	20+n    4     CRC-32 (IEEE) over bytes [0, 20+n)
//
// The trailing checksum covers the header too, so torn or bit-rotted
// checkpoint files are rejected on load instead of resuming from garbage.
// Checkpoints are written via WriteFileAtomic, so a crash during a save
// leaves the previous checkpoint intact.
const (
	magic   = "S3PGCKP1"
	version = 1
)

// Sentinel load errors, wrapped with detail by Load.
var (
	ErrBadMagic   = errors.New("ckpt: not a checkpoint file")
	ErrBadVersion = errors.New("ckpt: unsupported checkpoint version")
	ErrChecksum   = errors.New("ckpt: checksum mismatch (torn or corrupted checkpoint)")
)

// Checkpoint is the durable record of how far a transformation run got: the
// input position to resume reading from, the run configuration (so a resume
// with mismatched flags is rejected), the serialized transform state, and
// the tallies used both for reporting continuity and for verifying that the
// restored state is consistent before continuing.
type Checkpoint struct {
	// InputPath is the data file the offsets refer to.
	InputPath string `json:"input_path"`
	// InputSize is the input's size when the checkpoint was written; on
	// resume a smaller current size means the input was swapped/truncated.
	InputSize int64 `json:"input_size"`
	// ByteOffset is the byte position after the last consumed statement:
	// resume seeks here and continues with the next line.
	ByteOffset int64 `json:"byte_offset"`
	// Lines is how many input lines were consumed (for error-message
	// continuity after resume).
	Lines int64 `json:"lines"`
	// Statements is how many statements were parsed and applied.
	Statements int64 `json:"statements"`
	// Skipped is the lenient-mode malformed-statement tally so far.
	Skipped int64 `json:"skipped"`

	// Mode is the transformation mode ("parsimonious"/"non-parsimonious").
	Mode string `json:"mode"`
	// Lenient records whether the degradation policy was active.
	Lenient bool `json:"lenient"`
	// ShapesPath is the shape schema the run was started with.
	ShapesPath string `json:"shapes_path"`

	// Nodes and Edges are the dictionary high-water marks of the emitted
	// property graph; RestoreTransformer cross-checks them against the
	// embedded state.
	Nodes int64 `json:"nodes"`
	Edges int64 `json:"edges"`
	// KVProps and Degraded carry the transformer's tallies across resume.
	KVProps  int64 `json:"kv_props"`
	Degraded int64 `json:"degraded"`

	// SchemaDDL is the (possibly fallback-extended) PG-Schema at the
	// checkpoint boundary.
	SchemaDDL string `json:"schema_ddl"`
	// NodesCSV and EdgesCSV are the property graph store serialized in the
	// bulk CSV format — by Prop. 4.3 this prefix graph is a sub-graph of
	// the final result, so it is committed as-is and only grown on resume.
	NodesCSV []byte `json:"nodes_csv"`
	EdgesCSV []byte `json:"edges_csv"`
	// FallbackRoutes lists the (source label, predicate IRI) pairs whose
	// edge routes were invented for uncovered data; the Fallback flag does
	// not survive the DDL round trip, so it is carried explicitly.
	FallbackRoutes [][2]string `json:"fallback_routes,omitempty"`
}

// Encode serializes the checkpoint in the versioned, checksummed format.
func (c *Checkpoint) Encode(w io.Writer) error {
	payload, err := json.Marshal(c)
	if err != nil {
		return fmt.Errorf("ckpt: encode: %w", err)
	}
	var buf bytes.Buffer
	buf.Grow(len(payload) + 24)
	buf.WriteString(magic)
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:4], version)
	binary.LittleEndian.PutUint64(hdr[4:12], uint64(len(payload)))
	buf.Write(hdr[:])
	buf.Write(payload)
	sum := crc32.ChecksumIEEE(buf.Bytes())
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], sum)
	buf.Write(tail[:])
	_, err = w.Write(buf.Bytes())
	return err
}

// Decode parses a checkpoint, verifying magic, version, and checksum.
func Decode(r io.Reader) (*Checkpoint, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("ckpt: read: %w", err)
	}
	if len(raw) < len(magic)+12+4 || string(raw[:len(magic)]) != magic {
		return nil, ErrBadMagic
	}
	if v := binary.LittleEndian.Uint32(raw[8:12]); v != version {
		return nil, fmt.Errorf("%w: %d (supported: %d)", ErrBadVersion, v, version)
	}
	n := binary.LittleEndian.Uint64(raw[12:20])
	if uint64(len(raw)) != 20+n+4 {
		return nil, fmt.Errorf("%w: payload length %d does not match file size %d", ErrChecksum, n, len(raw))
	}
	want := binary.LittleEndian.Uint32(raw[20+n:])
	if got := crc32.ChecksumIEEE(raw[:20+n]); got != want {
		return nil, fmt.Errorf("%w: crc %08x, want %08x", ErrChecksum, got, want)
	}
	c := &Checkpoint{}
	if err := json.Unmarshal(raw[20:20+n], c); err != nil {
		return nil, fmt.Errorf("ckpt: payload: %w", err)
	}
	return c, nil
}

// Save atomically writes the checkpoint to path: a crash mid-save leaves
// the previous checkpoint (or none) in place, never a torn file.
func Save(path string, c *Checkpoint) error {
	return SaveFS(OSFS, path, c)
}

// SaveFS is Save over an explicit FS (the fault-injection seam).
func SaveFS(fsys FS, path string, c *Checkpoint) error {
	err := WriteFileAtomicFS(fsys, path, 0o644, c.Encode)
	if err == nil {
		cSaves.Inc()
		cSaveBytes.Add(int64(len(c.NodesCSV) + len(c.EdgesCSV) + len(c.SchemaDDL)))
	}
	return err
}

// Load reads and verifies the checkpoint at path.
func Load(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	c, err := Decode(f)
	if err != nil {
		return nil, fmt.Errorf("%w (file %s)", err, path)
	}
	cLoads.Inc()
	return c, nil
}
