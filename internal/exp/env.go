package exp

import (
	"context"
	"fmt"
	"io"
	"runtime"

	"github.com/s3pg/s3pg/internal/baseline/neosem"
	"github.com/s3pg/s3pg/internal/baseline/rdf2pgx"
	"github.com/s3pg/s3pg/internal/core"
	"github.com/s3pg/s3pg/internal/datagen"
	"github.com/s3pg/s3pg/internal/obs"
	"github.com/s3pg/s3pg/internal/pg"
	"github.com/s3pg/s3pg/internal/pgschema"
	"github.com/s3pg/s3pg/internal/rdf"
	"github.com/s3pg/s3pg/internal/shacl"
	"github.com/s3pg/s3pg/internal/shapeex"
)

// Config parameterizes an experiment run.
type Config struct {
	// Scale is the linear dataset scale relative to the paper's full-size
	// datasets (Table 2); 0.001 of DBpedia2022 is ≈330k triples.
	Scale float64
	// Seed drives all dataset generation.
	Seed int64
	// W receives the rendered tables.
	W io.Writer
	// MinSupport is the QSE-style shape-extraction pruning threshold.
	MinSupport float64
	// Workers sets the S3PG transform's parallelism; values <= 1 run the
	// sequential path. The transform is byte-deterministic in Workers, so
	// the rendered tables are identical at any setting — only the timing
	// columns move.
	Workers int
}

// DefaultConfig returns the configuration the committed EXPERIMENTS.md was
// produced with.
func DefaultConfig(w io.Writer) Config {
	return Config{Scale: 0.001, Seed: 1, W: w, MinSupport: 0.02, Workers: 1}
}

// DatasetNames lists the Table 2 datasets in presentation order.
var DatasetNames = []string{"DBpedia2020", "DBpedia2022", "Bio2RDFCT"}

// Env lazily materializes and caches datasets, shapes, and transformed
// graphs so that one invocation can drive several tables.
type Env struct {
	Cfg      Config
	profiles map[string]*datagen.Profile
	graphs   map[string]*rdf.Graph
	shapes   map[string]*shacl.Schema
	s3pg     map[string]*transformed
	neosem   map[string]*pg.Store
	rdf2pg   map[string]*pg.Store
}

type transformed struct {
	store  *pg.Store
	schema *pgschema.Schema
}

// NewEnv builds an environment.
func NewEnv(cfg Config) *Env {
	return &Env{
		Cfg:      cfg,
		profiles: datagen.Profiles(),
		graphs:   make(map[string]*rdf.Graph),
		shapes:   make(map[string]*shacl.Schema),
		s3pg:     make(map[string]*transformed),
		neosem:   make(map[string]*pg.Store),
		rdf2pg:   make(map[string]*pg.Store),
	}
}

// Profile returns the named dataset profile.
func (e *Env) Profile(name string) *datagen.Profile {
	p, ok := e.profiles[name]
	if !ok {
		panic(fmt.Sprintf("exp: unknown dataset %q", name))
	}
	return p
}

// Graph returns (generating on first use) the dataset's RDF graph.
func (e *Env) Graph(name string) *rdf.Graph {
	if g, ok := e.graphs[name]; ok {
		return g
	}
	g := datagen.Generate(e.Profile(name), e.Cfg.Scale, e.Cfg.Seed)
	e.graphs[name] = g
	return g
}

// Shapes returns (extracting on first use) the dataset's SHACL schema.
func (e *Env) Shapes(name string) *shacl.Schema {
	if s, ok := e.shapes[name]; ok {
		return s
	}
	s := shapeex.Extract(e.Graph(name), shapeex.Options{MinSupport: e.Cfg.MinSupport})
	e.shapes[name] = s
	return s
}

// S3PG returns (transforming on first use) the S3PG property graph and its
// PG-Schema for the dataset.
func (e *Env) S3PG(name string) (*pg.Store, *pgschema.Schema) {
	if t, ok := e.s3pg[name]; ok {
		return t.store, t.schema
	}
	tr, err := core.TransformWith(context.Background(), e.Graph(name), e.Shapes(name), core.Parsimonious, nil,
		core.TransformOptions{Workers: e.Cfg.Workers})
	if err != nil {
		panic(fmt.Sprintf("exp: S3PG transform of %s: %v", name, err))
	}
	e.s3pg[name] = &transformed{tr.Store(), tr.Schema()}
	return tr.Store(), tr.Schema()
}

// NeoSem returns the NeoSemantics-transformed property graph.
func (e *Env) NeoSem(name string) *pg.Store {
	if s, ok := e.neosem[name]; ok {
		return s
	}
	s, _ := neosem.Transform(e.Graph(name))
	e.neosem[name] = s
	return s
}

// RDF2PG returns the rdf2pg-transformed property graph.
func (e *Env) RDF2PG(name string) *pg.Store {
	if s, ok := e.rdf2pg[name]; ok {
		return s
	}
	s, _ := rdf2pgx.Transform(e.Graph(name))
	e.rdf2pg[name] = s
	return s
}

// measure runs fn under a fresh, ended obs span: wall time, allocation, and
// heap-growth deltas come from the span; fn may hang child spans and
// counters off it for per-phase breakdowns. The heap is settled with a GC
// first so the span's heap-growth delta keeps the Table 4 peak-heap
// semantics of the old ad-hoc timing helper.
func measure(name string, fn func(*obs.Span)) *obs.Span {
	runtime.GC()
	sp := obs.NewSpan(name)
	fn(sp)
	sp.End()
	return sp
}
