package exp

import (
	"bytes"
	"context"
	"fmt"
	"text/tabwriter"
	"time"

	"github.com/s3pg/s3pg/internal/baseline/neosem"
	"github.com/s3pg/s3pg/internal/baseline/rdf2pgx"
	"github.com/s3pg/s3pg/internal/core"
	"github.com/s3pg/s3pg/internal/cypher"
	"github.com/s3pg/s3pg/internal/datagen"
	"github.com/s3pg/s3pg/internal/obs"
	"github.com/s3pg/s3pg/internal/pg"
	"github.com/s3pg/s3pg/internal/sparql"
	"github.com/s3pg/s3pg/internal/stats"
)

// RunAll regenerates every table and figure.
func RunAll(e *Env) error {
	if err := RunTable2(e); err != nil {
		return err
	}
	if err := RunTable3(e); err != nil {
		return err
	}
	if _, err := RunTable4(e); err != nil {
		return err
	}
	if err := RunTable5(e); err != nil {
		return err
	}
	if _, err := RunTable6(e); err != nil {
		return err
	}
	if _, err := RunTable7(e); err != nil {
		return err
	}
	if _, err := RunFig6(e); err != nil {
		return err
	}
	_, err := RunMonotonicity(e)
	return err
}

// RunTable2 prints the dataset statistics (Table 2).
func RunTable2(e *Env) error {
	fmt.Fprintf(e.Cfg.W, "== Table 2: Size and characteristics of the datasets (scale %g) ==\n", e.Cfg.Scale)
	tw := tabwriter.NewWriter(e.Cfg.W, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "\tDBpedia2020\tDBpedia2022\tBio2RDFCT")
	rows := []struct {
		name string
		get  func(stats.Dataset) string
	}{
		{"# of triples", func(d stats.Dataset) string { return human(d.Triples) }},
		{"# of objects", func(d stats.Dataset) string { return human(d.Objects) }},
		{"# of subjects", func(d stats.Dataset) string { return human(d.Subjects) }},
		{"# of literals", func(d stats.Dataset) string { return human(d.Literals) }},
		{"# of instances", func(d stats.Dataset) string { return human(d.Instances) }},
		{"# of classes", func(d stats.Dataset) string { return fmt.Sprint(d.Classes) }},
		{"# of properties", func(d stats.Dataset) string { return fmt.Sprint(d.Properties) }},
		{"Size in MBs", func(d stats.Dataset) string { return fmt.Sprintf("%.1f", float64(d.SizeBytes)/1e6) }},
	}
	cols := make([]stats.Dataset, len(DatasetNames))
	for i, name := range DatasetNames {
		cols[i] = stats.ComputeDataset(e.Graph(name))
	}
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\n", r.name, r.get(cols[0]), r.get(cols[1]), r.get(cols[2]))
	}
	tw.Flush()
	fmt.Fprintln(e.Cfg.W)
	return nil
}

// RunTable3 prints the SHACL shape statistics (Table 3).
func RunTable3(e *Env) error {
	fmt.Fprintln(e.Cfg.W, "== Table 3: SHACL shapes statistics ==")
	tw := tabwriter.NewWriter(e.Cfg.W, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "\tNS\tPS\tSingle\tMulti\tST-L\tST-NL\tMT-Homo-L\tMT-Homo-NL\tMT-Hetero")
	for _, name := range DatasetNames {
		s := stats.ComputeShapes(e.Shapes(name))
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
			name, s.NodeShapes, s.PropertyShapes, s.SingleType, s.MultiType,
			s.SingleTypeLiteral, s.SingleTypeNonLiteral,
			s.MultiTypeHomoLit, s.MultiTypeHomoNonLit, s.MultiTypeHetero)
	}
	tw.Flush()
	fmt.Fprintln(e.Cfg.W)
	return nil
}

// Table4Row holds the measured transformation (T) and loading (L) times of
// one method on one dataset. For S3PG, Phases carries the obs span tree of
// the transformation (F_st, mapping, F_dt with its two phases).
type Table4Row struct {
	Dataset   string
	Method    string
	Transform time.Duration
	Load      time.Duration
	HeapBytes uint64
	Phases    *obs.SpanRecord
}

// Sum returns T+L.
func (r Table4Row) Sum() time.Duration { return r.Transform + r.Load }

// RunTable4 measures and prints transformation and loading times (Table 4).
// Loading is the CSV bulk export/import path, mirroring the paper's use of
// Neo4j's CSV importer. NeoSemantics transforms through the store directly,
// so — as in the paper — its T and L cannot be separated and only the sum
// is reported.
func RunTable4(e *Env) ([]Table4Row, error) {
	var out []Table4Row
	for _, name := range DatasetNames {
		g := e.Graph(name)
		sg := e.Shapes(name)

		var s3store *pg.Store
		s3span := measure("S3PG/"+name, func(sp *obs.Span) {
			tr, err := core.TransformWith(context.Background(), g, sg, core.Parsimonious, sp,
				core.TransformOptions{Workers: e.Cfg.Workers})
			if err != nil {
				panic(err)
			}
			s3store = tr.Store()
		})
		lS3 := loadTime(s3store)
		rec := s3span.Record()
		out = append(out, Table4Row{name, "S3PG", s3span.Wall(), lS3, s3span.HeapGrowth(), &rec})

		var rdfStore *pg.Store
		rSpan := measure("rdf2pg/"+name, func(*obs.Span) { rdfStore, _ = rdf2pgx.Transform(g) })
		lR := loadTime(rdfStore)
		out = append(out, Table4Row{name, "rdf2pg", rSpan.Wall(), lR, rSpan.HeapGrowth(), nil})

		nSpan := measure("NeoSem/"+name, func(*obs.Span) { _, _ = neosem.Transform(g) })
		out = append(out, Table4Row{name, "NeoSem", nSpan.Wall(), 0, nSpan.HeapGrowth(), nil})
	}

	fmt.Fprintln(e.Cfg.W, "== Table 4: Transformation (T) and Loading (L) times ==")
	tw := tabwriter.NewWriter(e.Cfg.W, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "dataset\tmethod\tT\tL\tSum\tpeak-heap")
	for _, r := range out {
		tStr, lStr := obs.FormatDuration(r.Transform), obs.FormatDuration(r.Load)
		if r.Method == "NeoSem" {
			tStr, lStr = "-", "-"
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%s\n",
			r.Dataset, r.Method, tStr, lStr, obs.FormatDuration(r.Sum()), obs.FormatBytes(r.HeapBytes))
	}
	tw.Flush()
	fmt.Fprintln(e.Cfg.W, "\n-- S3PG per-phase breakdown (obs trace) --")
	for _, r := range out {
		if r.Phases != nil {
			if err := r.Phases.WriteTree(e.Cfg.W); err != nil {
				return nil, err
			}
		}
	}
	fmt.Fprintln(e.Cfg.W)
	return out, nil
}

// loadTime measures the CSV export + bulk import round trip.
func loadTime(store *pg.Store) time.Duration {
	sp := measure("load", func(*obs.Span) {
		var nodes, edges bytes.Buffer
		if err := store.WriteCSV(&nodes, &edges); err != nil {
			panic(err)
		}
		if _, err := pg.LoadCSV(&nodes, &edges); err != nil {
			panic(err)
		}
	})
	return sp.Wall()
}

// RunTable5 prints the transformed-graph statistics (Table 5).
func RunTable5(e *Env) error {
	fmt.Fprintln(e.Cfg.W, "== Table 5: Transformed graphs (PG models) stats ==")
	tw := tabwriter.NewWriter(e.Cfg.W, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "dataset\tmethod\t# nodes\t# edges\t# rel types")
	for _, name := range DatasetNames {
		s3store, _ := e.S3PG(name)
		for _, m := range []struct {
			name  string
			store *pg.Store
		}{
			{"S3PG", s3store},
			{"NeoSem", e.NeoSem(name)},
			{"rdf2pg", e.RDF2PG(name)},
		} {
			p := stats.ComputePG(m.store)
			fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%d\n",
				name, m.name, human(p.Nodes), human(p.Edges), p.RelTypes)
		}
	}
	tw.Flush()
	fmt.Fprintln(e.Cfg.W)
	return nil
}

// RunTable6 measures and prints DBpedia2022 query accuracy (Table 6).
func RunTable6(e *Env) ([]QueryAccuracy, error) {
	rows, err := MeasureAccuracy(e, "DBpedia2022", DBpediaQueries())
	if err != nil {
		return nil, err
	}
	printAccuracy(e, "Table 6: Accuracy analysis for DBpedia2022", rows)
	return rows, nil
}

// RunTable7 measures and prints Bio2RDF query accuracy (Table 7).
func RunTable7(e *Env) ([]QueryAccuracy, error) {
	rows, err := MeasureAccuracy(e, "Bio2RDFCT", Bio2RDFQueries())
	if err != nil {
		return nil, err
	}
	printAccuracy(e, "Table 7: Accuracy analysis for Bio2RDF", rows)
	return rows, nil
}

func printAccuracy(e *Env, title string, rows []QueryAccuracy) {
	fmt.Fprintf(e.Cfg.W, "== %s ==\n", title)
	tw := tabwriter.NewWriter(e.Cfg.W, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "query\tcategory\t# of GT\tS3PG\tNeoSem\trdf2pg")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%s\t%s\t%s\n",
			r.Query.ID, r.Query.Category, r.GT,
			pct(r.S3PG), pct(r.NeoSem), pct(r.RDF2PG))
	}
	tw.Flush()
	fmt.Fprintln(e.Cfg.W)
}

// Fig6Row holds average per-query runtimes for one query.
type Fig6Row struct {
	Query  Query
	SPARQL time.Duration // RDF engine (the paper's GraphDB series)
	S3PG   time.Duration
	NeoSem time.Duration
	RDF2PG time.Duration
}

// RunFig6 measures and prints query runtimes (Figure 6): each query runs
// once warm-up plus reps timed executions per engine; averages per query
// are reported, grouped into the figure's four panels.
func RunFig6(e *Env) ([]Fig6Row, error) {
	const reps = 3
	g := e.Graph("DBpedia2022")
	s3store, _ := e.S3PG("DBpedia2022")
	neoStore := e.NeoSem("DBpedia2022")
	rdfStore := e.RDF2PG("DBpedia2022")

	var out []Fig6Row
	for _, q := range DBpediaQueries() {
		row := Fig6Row{Query: q}

		sq, err := sparql.Parse(q.SPARQL)
		if err != nil {
			return nil, err
		}
		row.SPARQL = avgTime(reps, func() {
			if _, err := sparql.Eval(g, sq); err != nil {
				panic(err)
			}
		})

		cq, err := cypher.Parse(q.Cypher)
		if err != nil {
			return nil, err
		}
		for _, m := range []struct {
			store *pg.Store
			dst   *time.Duration
		}{
			{s3store, &row.S3PG},
			{neoStore, &row.NeoSem},
			{rdfStore, &row.RDF2PG},
		} {
			store := m.store
			*m.dst = avgTime(reps, func() {
				if _, err := cypher.Eval(store, cq); err != nil {
					panic(err)
				}
			})
		}
		out = append(out, row)
	}

	fmt.Fprintln(e.Cfg.W, "== Figure 6: Query runtime analysis on DBpedia2022 (avg ms) ==")
	var last Category
	tw := tabwriter.NewWriter(e.Cfg.W, 2, 4, 2, ' ', 0)
	for _, r := range out {
		if r.Query.Category != last {
			fmt.Fprintf(tw, "-- %s --\t\t\t\t\n", r.Query.Category)
			fmt.Fprintln(tw, "query\tRDF(SPARQL)\tS3PG\tNeoSem\trdf2pg")
			last = r.Query.Category
		}
		fmt.Fprintf(tw, "%s\t%.2f\t%.2f\t%.2f\t%.2f\n", r.Query.ID,
			ms(r.SPARQL), ms(r.S3PG), ms(r.NeoSem), ms(r.RDF2PG))
	}
	tw.Flush()
	fmt.Fprintln(e.Cfg.W)
	return out, nil
}

func avgTime(reps int, fn func()) time.Duration {
	fn() // warm-up
	sp := obs.NewSpan("reps")
	for i := 0; i < reps; i++ {
		fn()
	}
	sp.End()
	return sp.Wall() / time.Duration(reps)
}

// MonotonicityResult holds the §5.4 measurements.
type MonotonicityResult struct {
	BaseTriples  int
	DeltaTriples int
	// Full from-scratch transformations.
	FullParsimonious    time.Duration // S1, parsimonious
	FullNonParsimonious time.Duration // S1, non-parsimonious
	FullS2Parsimonious  time.Duration // S1 ∪ Δ from scratch
	// Incremental: applying only Δ to the non-parsimonious transformer.
	IncrementalDelta time.Duration
	// SavingsPct is 1 - incremental/full-S2.
	SavingsPct float64
	// Equivalent reports whether the incremental PG decodes to S1 ∪ Δ.
	Equivalent bool
}

// RunMonotonicity reproduces the §5.4 analysis on the DBpedia2022 profile:
// two snapshots whose Δ adds ≈5.2% of the triples, comparing full
// re-transformation against incremental application of Δ.
func RunMonotonicity(e *Env) (*MonotonicityResult, error) {
	p := e.Profile("DBpedia2022")
	s1 := e.Graph("DBpedia2022")
	delta := datagen.Evolve(s1, p, 0.0521, e.Cfg.Seed+1000)
	sg := e.Shapes("DBpedia2022")

	res := &MonotonicityResult{BaseTriples: s1.Len(), DeltaTriples: delta.Len()}

	res.FullParsimonious = measure("full.s1.parsimonious", func(sp *obs.Span) {
		if _, _, err := core.TransformTraced(s1, sg, core.Parsimonious, sp); err != nil {
			panic(err)
		}
	}).Wall()
	res.FullNonParsimonious = measure("full.s1.nonparsimonious", func(sp *obs.Span) {
		if _, _, err := core.TransformTraced(s1, sg, core.NonParsimonious, sp); err != nil {
			panic(err)
		}
	}).Wall()

	s2 := s1.Clone()
	s2.AddAll(delta)
	res.FullS2Parsimonious = measure("full.s2.parsimonious", func(sp *obs.Span) {
		if _, _, err := core.TransformTraced(s2, sg, core.Parsimonious, sp); err != nil {
			panic(err)
		}
	}).Wall()

	// Incremental: transform S1 once, then apply only Δ.
	tr, err := core.NewTransformer(sg, core.NonParsimonious)
	if err != nil {
		return nil, err
	}
	if err := tr.Apply(s1); err != nil {
		return nil, err
	}
	res.IncrementalDelta = measure("incremental.delta", func(sp *obs.Span) {
		if err := tr.ApplyTraced(delta, sp); err != nil {
			panic(err)
		}
	}).Wall()
	res.SavingsPct = 1 - float64(res.IncrementalDelta)/float64(res.FullS2Parsimonious)

	back, err := core.InverseData(tr.Store(), tr.Schema())
	if err != nil {
		return nil, err
	}
	res.Equivalent = s2.Equal(back)

	fmt.Fprintln(e.Cfg.W, "== §5.4 Monotonicity analysis (DBpedia2022 profile) ==")
	tw := tabwriter.NewWriter(e.Cfg.W, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "base snapshot\t%s triples\n", human(res.BaseTriples))
	fmt.Fprintf(tw, "delta (Δ)\t%s triples (%.2f%%)\n", human(res.DeltaTriples),
		100*float64(res.DeltaTriples)/float64(res.BaseTriples))
	fmt.Fprintf(tw, "full transform S1, parsimonious\t%s\n", obs.FormatDuration(res.FullParsimonious))
	fmt.Fprintf(tw, "full transform S1, non-parsimonious\t%s\n", obs.FormatDuration(res.FullNonParsimonious))
	fmt.Fprintf(tw, "full transform S1∪Δ, parsimonious\t%s\n", obs.FormatDuration(res.FullS2Parsimonious))
	fmt.Fprintf(tw, "incremental Δ only, non-parsimonious\t%s\n", obs.FormatDuration(res.IncrementalDelta))
	fmt.Fprintf(tw, "time saved vs full recomputation\t%.1f%%\n", 100*res.SavingsPct)
	fmt.Fprintf(tw, "incremental PG ≅ F(S1∪Δ)\t%v\n", res.Equivalent)
	tw.Flush()
	fmt.Fprintln(e.Cfg.W)
	return res, nil
}

// Formatting helpers.

func human(n int) string {
	switch {
	case n >= 1_000_000:
		return fmt.Sprintf("%.1fM", float64(n)/1e6)
	case n >= 10_000:
		return fmt.Sprintf("%.0fK", float64(n)/1e3)
	default:
		return fmt.Sprint(n)
	}
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

func pct(f float64) string {
	if f == 1 {
		return "100%"
	}
	return fmt.Sprintf("%.2f%%", 100*f)
}
