// Package exp is the benchmark harness that regenerates every table and
// figure of the paper's evaluation (§5): dataset statistics (Table 2),
// shape statistics (Table 3), transformation and loading times (Table 4),
// transformed-graph statistics (Table 5), query-answer accuracy against
// SPARQL ground truth (Tables 6 and 7), query runtime (Figure 6), and the
// §5.4 monotonicity analysis.
package exp

import (
	"fmt"

	"github.com/s3pg/s3pg/internal/datagen"
)

// Category is the §5.2 query categorization (from the Figure 3 taxonomy).
type Category string

// The four §5.2 query categories.
const (
	CatSingleType Category = "Single Type"
	CatMTHomoLit  Category = "MT-Homo (L)"
	CatMTHomoNonL Category = "MT-Homo (NL)"
	CatMTHetero   Category = "MT-Hetero (L+NL)"
)

// Query is one paired workload query: the SPARQL formulation provides the
// ground truth over the RDF graph; the Cypher formulation is executed over
// every transformed PG (the UNWIND-over-properties UNION ALL
// edges-to-targets shape covers the encodings of all three methods, exactly
// like the paper's manually translated queries per method).
type Query struct {
	ID       string
	Category Category
	SPARQL   string
	Cypher   string
}

// retrievalPair builds the standard property-retrieval query pair for
// (class, property) in a namespace.
func retrievalPair(ns, class, prop string) (string, string) {
	sparql := fmt.Sprintf(
		"PREFIX d: <%s>\nSELECT ?e ?v WHERE { ?e a d:%s ; d:%s ?v . }",
		ns, class, prop)
	cypher := fmt.Sprintf(`
MATCH (n:%[1]s) UNWIND n.%[2]s AS v RETURN n.iri AS e, v
UNION ALL
MATCH (n:%[1]s)-[:%[2]s]->(t) RETURN n.iri AS e, COALESCE(t.value, t.iri) AS v`,
		class, prop)
	return sparql, cypher
}

// filteredPair builds a pair with a numeric filter over a single-valued
// property.
func filteredPair(ns, class, prop string, min int) (string, string) {
	sparql := fmt.Sprintf(
		"PREFIX d: <%s>\nSELECT ?e ?v WHERE { ?e a d:%s ; d:%s ?v . FILTER(?v > %d) }",
		ns, class, prop, min)
	cypher := fmt.Sprintf(`
MATCH (n:%[1]s) WHERE n.%[2]s > %[3]d RETURN n.iri AS e, n.%[2]s AS v
UNION ALL
MATCH (n:%[1]s)-[:%[2]s]->(t) WHERE t.value > %[3]d RETURN n.iri AS e, t.value AS v`,
		class, prop, min)
	return sparql, cypher
}

// joinPair builds a two-hop pair: subjects of class with their property
// value reached through an entity-valued link.
func joinPair(ns, class, link, linkedClass, prop string) (string, string) {
	sparql := fmt.Sprintf(
		"PREFIX d: <%s>\nSELECT ?e ?v WHERE { ?e a d:%s ; d:%s ?m . ?m a d:%s ; d:%s ?v . }",
		ns, class, link, linkedClass, prop)
	cypher := fmt.Sprintf(`
MATCH (n:%[1]s)-[:%[2]s]->(m:%[3]s) UNWIND m.%[4]s AS v RETURN n.iri AS e, v
UNION ALL
MATCH (n:%[1]s)-[:%[2]s]->(m:%[3]s)-[:%[4]s]->(t) RETURN n.iri AS e, COALESCE(t.value, t.iri) AS v`,
		class, link, linkedClass, prop)
	return sparql, cypher
}

func q(id string, cat Category, sparql, cypher string) Query {
	return Query{ID: id, Category: cat, SPARQL: sparql, Cypher: cypher}
}

func rq(id string, cat Category, ns, class, prop string) Query {
	s, c := retrievalPair(ns, class, prop)
	return q(id, cat, s, c)
}

// DBpediaQueries is the Table 6 workload: 30 queries over the DBpedia2022
// profile — 5 single-type, 5 multi-type homogeneous literal, 5 multi-type
// homogeneous non-literal, and 15 multi-type heterogeneous queries.
func DBpediaQueries() []Query {
	ns := datagen.DBpedia2022().NS
	var qs []Query

	// Q1–Q5: single type.
	qs = append(qs, rq("Q1", CatSingleType, ns, "Person", "name"))
	qs = append(qs, rq("Q2", CatSingleType, ns, "Place", "name"))
	qs = append(qs, rq("Q3", CatSingleType, ns, "Organisation", "founded"))
	s4, c4 := filteredPair(ns, "Place", "population", 50000)
	qs = append(qs, q("Q4", CatSingleType, s4, c4))
	s5, c5 := joinPair(ns, "Place", "country", "Country", "name")
	qs = append(qs, q("Q5", CatSingleType, s5, c5))

	// Q6–Q10: multi-type homogeneous literals.
	qs = append(qs, rq("Q6", CatMTHomoLit, ns, "Person", "birthDate"))
	qs = append(qs, rq("Q7", CatMTHomoLit, ns, "Album", "releaseYear"))
	qs = append(qs, rq("Q8", CatMTHomoLit, ns, "Film", "released"))
	qs = append(qs, rq("Q9", CatMTHomoLit, ns, "Work", "subject"))
	qs = append(qs, rq("Q10", CatMTHomoLit, ns, "ShoppingCenter", "openingYear"))

	// Q11–Q15: multi-type homogeneous non-literals.
	qs = append(qs, rq("Q11", CatMTHomoNonL, ns, "Film", "director"))
	qs = append(qs, rq("Q12", CatMTHomoNonL, ns, "Film", "starring"))
	qs = append(qs, rq("Q13", CatMTHomoNonL, ns, "Organisation", "keyPerson"))
	s14, c14 := joinPair(ns, "Film", "director", "Person", "name")
	qs = append(qs, q("Q14", CatMTHomoNonL, s14, c14))
	s15, c15 := joinPair(ns, "Film", "starring", "Person", "surname")
	qs = append(qs, q("Q15", CatMTHomoNonL, s15, c15))

	// Q16–Q30: multi-type heterogeneous (the paper's Q22 shape).
	hetero := []struct {
		class, prop string
	}{
		{"Person", "birthPlace"},      // Q16
		{"Place", "address"},          // Q17
		{"Album", "writer"},           // Q18
		{"Album", "producer"},         // Q19
		{"Organisation", "location"},  // Q20
		{"ShoppingCenter", "manager"}, // Q21
		{"ShoppingCenter", "address"}, // Q22 (inherited from Place)
	}
	id := 16
	for _, h := range hetero {
		qs = append(qs, rq(fmt.Sprintf("Q%d", id), CatMTHetero, ns, h.class, h.prop))
		id++
	}
	// Q23–Q24: joins landing on heterogeneous properties.
	s, c := joinPair(ns, "Album", "artist", "Person", "birthPlace")
	qs = append(qs, q(fmt.Sprintf("Q%d", id), CatMTHetero, s, c))
	id++
	s, c = joinPair(ns, "Organisation", "keyPerson", "Person", "birthPlace")
	qs = append(qs, q(fmt.Sprintf("Q%d", id), CatMTHetero, s, c))
	id++

	// Q25–Q27: heterogeneous retrieval restricted by a subject-side filter.
	for _, h := range []struct {
		class, nameProp, prop, prefix string
	}{
		{"Place", "name", "address", "A"},
		{"Album", "title", "writer", "B"},
		{"Organisation", "name", "location", "C"},
	} {
		sparql := fmt.Sprintf(
			"PREFIX d: <%s>\nSELECT ?e ?v WHERE { ?e a d:%s ; d:%s ?n ; d:%s ?v . FILTER(STRSTARTS(STR(?n), %q)) }",
			ns, h.class, h.nameProp, h.prop, h.prefix)
		cypher := fmt.Sprintf(`
MATCH (n:%[1]s) WHERE n.%[2]s STARTS WITH '%[4]s' UNWIND n.%[3]s AS v RETURN n.iri AS e, v
UNION ALL
MATCH (n:%[1]s)-[:%[3]s]->(t) WHERE n.%[2]s STARTS WITH '%[4]s' RETURN n.iri AS e, COALESCE(t.value, t.iri) AS v`,
			h.class, h.nameProp, h.prop, h.prefix)
		qs = append(qs, q(fmt.Sprintf("Q%d", id), CatMTHetero, sparql, cypher))
		id++
	}

	// Q28–Q30: DISTINCT projections over heterogeneous values.
	for _, h := range []struct {
		class, prop string
	}{
		{"Person", "birthPlace"},
		{"Album", "producer"},
		{"ShoppingCenter", "manager"},
	} {
		sparql := fmt.Sprintf(
			"PREFIX d: <%s>\nSELECT DISTINCT ?v WHERE { ?e a d:%s ; d:%s ?v . }",
			ns, h.class, h.prop)
		cypher := fmt.Sprintf(`
MATCH (n:%[1]s) UNWIND n.%[2]s AS v RETURN v
UNION
MATCH (n:%[1]s)-[:%[2]s]->(t) RETURN COALESCE(t.value, t.iri) AS v`,
			h.class, h.prop)
		qs = append(qs, q(fmt.Sprintf("Q%d", id), CatMTHetero, sparql, cypher))
		id++
	}
	return qs
}

// Bio2RDFQueries is the Table 7 workload: 12 queries over the Bio2RDFCT
// profile — 3 per category.
func Bio2RDFQueries() []Query {
	ns := datagen.Bio2RDFCT().NS
	var qs []Query
	qs = append(qs, rq("Q1", CatSingleType, ns, "ClinicalStudy", "briefTitle"))
	qs = append(qs, rq("Q2", CatSingleType, ns, "Drug", "label"))
	s3, c3 := filteredPair(ns, "ClinicalStudy", "enrollment", 40000)
	qs = append(qs, q("Q3", CatSingleType, s3, c3))

	qs = append(qs, rq("Q4", CatMTHomoLit, ns, "ClinicalStudy", "startDate"))
	qs = append(qs, rq("Q5", CatMTHomoLit, ns, "Condition", "meshTerm"))
	qs = append(qs, rq("Q6", CatMTHomoLit, ns, "Drug", "dosage"))

	qs = append(qs, rq("Q7", CatMTHomoNonL, ns, "ClinicalStudy", "condition"))
	qs = append(qs, rq("Q8", CatMTHomoNonL, ns, "ClinicalStudy", "intervention"))
	s9, c9 := joinPair(ns, "Outcome", "ofStudy", "ClinicalStudy", "phase")
	qs = append(qs, q("Q9", CatMTHomoNonL, s9, c9))

	qs = append(qs, rq("Q10", CatMTHetero, ns, "ClinicalStudy", "sponsor"))
	s11, c11 := joinPair(ns, "Outcome", "ofStudy", "ClinicalStudy", "sponsor")
	qs = append(qs, q("Q11", CatMTHetero, s11, c11))
	// Q12: the heterogeneous sponsor values of studies that have a facility.
	s12 := fmt.Sprintf(
		"PREFIX d: <%s>\nSELECT ?e ?v WHERE { ?e a d:ClinicalStudy ; d:facility ?f ; d:sponsor ?v . }", ns)
	c12 := `
MATCH (n:ClinicalStudy)-[:facility]->(f:Facility) UNWIND n.sponsor AS v RETURN n.iri AS e, v
UNION ALL
MATCH (n:ClinicalStudy)-[:facility]->(f:Facility), (n)-[:sponsor]->(t) RETURN n.iri AS e, COALESCE(t.value, t.iri) AS v`
	qs = append(qs, q("Q12", CatMTHetero, s12, c12))
	return qs
}
