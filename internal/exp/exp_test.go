package exp_test

import (
	"bytes"
	"strings"
	"testing"

	"github.com/s3pg/s3pg/internal/exp"
)

// smallEnv builds an environment at a test-friendly scale.
func smallEnv(t *testing.T) *exp.Env {
	t.Helper()
	var buf bytes.Buffer
	cfg := exp.DefaultConfig(&buf)
	cfg.Scale = 0.0002
	return exp.NewEnv(cfg)
}

func TestAccuracyMetric(t *testing.T) {
	cases := []struct {
		gt, got []string
		want    float64
	}{
		{[]string{"a", "b"}, []string{"a", "b"}, 1},
		{[]string{"a", "b"}, []string{"a"}, 0.5},
		{[]string{"a", "a"}, []string{"a"}, 0.5}, // multiset semantics
		{[]string{"a"}, []string{"a", "a", "b"}, 1},
		{[]string{}, []string{}, 1},
		{[]string{}, []string{"x"}, 0},
		{[]string{"a", "b"}, nil, 0},
	}
	for _, c := range cases {
		if got := exp.Accuracy(c.gt, c.got); got != c.want {
			t.Errorf("Accuracy(%v, %v) = %v, want %v", c.gt, c.got, got, c.want)
		}
	}
}

func TestWorkloadsParse(t *testing.T) {
	// Every workload query must parse in both engines; MeasureAccuracy
	// exercises evaluation, this guards the query texts themselves.
	if n := len(exp.DBpediaQueries()); n != 30 {
		t.Fatalf("DBpedia workload has %d queries, want 30", n)
	}
	if n := len(exp.Bio2RDFQueries()); n != 12 {
		t.Fatalf("Bio2RDF workload has %d queries, want 12", n)
	}
}

func TestTable6ShapeHolds(t *testing.T) {
	// The headline result: S3PG is 100% on every query; the baselines lose
	// answers, with rdf2pg the worst on heterogeneous queries.
	e := smallEnv(t)
	rows, err := exp.RunTable6(e)
	if err != nil {
		t.Fatal(err)
	}
	var neoLoss, rdfLoss int
	var rdfHeteroWorst float64 = 1
	for _, r := range rows {
		if r.S3PG != 1 {
			t.Errorf("%s: S3PG accuracy %.4f, want 1.0", r.Query.ID, r.S3PG)
		}
		if r.NeoSem < 1 {
			neoLoss++
		}
		if r.RDF2PG < 1 {
			rdfLoss++
		}
		if r.Query.Category == exp.CatMTHetero && r.RDF2PG < rdfHeteroWorst {
			rdfHeteroWorst = r.RDF2PG
		}
		// Single-type and homogeneous non-literal queries: NeoSem ≈ 100%.
		if r.Query.Category == exp.CatSingleType || r.Query.Category == exp.CatMTHomoNonL {
			if r.NeoSem < 0.999 {
				t.Errorf("%s (%s): NeoSem %.4f, expected ~100%%", r.Query.ID, r.Query.Category, r.NeoSem)
			}
		}
	}
	if neoLoss == 0 {
		t.Error("NeoSem lost nothing — heterogeneous loss model not engaged")
	}
	if rdfLoss == 0 {
		t.Error("rdf2pg lost nothing — schema-direct loss model not engaged")
	}
	if rdfHeteroWorst > 0.9 {
		t.Errorf("rdf2pg worst heterogeneous accuracy %.4f, expected well below 0.9", rdfHeteroWorst)
	}
}

func TestTable7ShapeHolds(t *testing.T) {
	e := smallEnv(t)
	rows, err := exp.RunTable7(e)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.S3PG != 1 {
			t.Errorf("%s: S3PG accuracy %.4f, want 1.0", r.Query.ID, r.S3PG)
		}
		if r.GT == 0 {
			t.Errorf("%s: empty ground truth — query matches nothing", r.Query.ID)
		}
	}
}

func TestTable4Runs(t *testing.T) {
	e := smallEnv(t)
	rows, err := exp.RunTable4(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 { // 3 datasets × 3 methods
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Sum() <= 0 {
			t.Errorf("%s/%s: non-positive time", r.Dataset, r.Method)
		}
	}
}

func TestTable5S3PGLarger(t *testing.T) {
	// Table 5's shape: S3PG graphs have more nodes and edges than the
	// baselines' (value nodes), most pronounced on DBpedia2022.
	e := smallEnv(t)
	s3, _ := e.S3PG("DBpedia2022")
	neo := e.NeoSem("DBpedia2022")
	rdf := e.RDF2PG("DBpedia2022")
	if s3.NumNodes() <= neo.NumNodes() || s3.NumNodes() <= rdf.NumNodes() {
		t.Errorf("S3PG nodes %d not larger than NeoSem %d / rdf2pg %d",
			s3.NumNodes(), neo.NumNodes(), rdf.NumNodes())
	}
	if s3.NumEdges() <= neo.NumEdges() {
		t.Errorf("S3PG edges %d not larger than NeoSem %d", s3.NumEdges(), neo.NumEdges())
	}
}

func TestMonotonicityRun(t *testing.T) {
	e := smallEnv(t)
	res, err := exp.RunMonotonicity(e)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equivalent {
		t.Error("incremental PG does not decode to S1 ∪ Δ")
	}
	if res.SavingsPct <= 0 {
		t.Errorf("no savings from incremental transformation: %.2f", res.SavingsPct)
	}
	if res.DeltaTriples <= 0 || res.BaseTriples <= 0 {
		t.Fatalf("bad sizes: %+v", res)
	}
}

func TestTables2And3Render(t *testing.T) {
	var buf bytes.Buffer
	cfg := exp.DefaultConfig(&buf)
	cfg.Scale = 0.0002
	e := exp.NewEnv(cfg)
	if err := exp.RunTable2(e); err != nil {
		t.Fatal(err)
	}
	if err := exp.RunTable3(e); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table 2", "# of triples", "Table 3", "MT-Hetero"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFig6Runs(t *testing.T) {
	if testing.Short() {
		t.Skip("runtime measurement")
	}
	var buf bytes.Buffer
	cfg := exp.DefaultConfig(&buf)
	cfg.Scale = 0.0001
	e := exp.NewEnv(cfg)
	rows, err := exp.RunFig6(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 30 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.SPARQL <= 0 || r.S3PG <= 0 || r.NeoSem <= 0 || r.RDF2PG <= 0 {
			t.Fatalf("%s: non-positive runtime %+v", r.Query.ID, r)
		}
	}
	if !strings.Contains(buf.String(), "Figure 6") {
		t.Fatal("figure output missing")
	}
}

func TestRunAllSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness")
	}
	var buf bytes.Buffer
	cfg := exp.DefaultConfig(&buf)
	cfg.Scale = 0.0001
	e := exp.NewEnv(cfg)
	if err := exp.RunAll(e); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table 2", "Table 3", "Table 4", "Table 5", "Table 6", "Table 7", "Figure 6", "Monotonicity"} {
		if !strings.Contains(out, want) {
			t.Errorf("RunAll output missing %q", want)
		}
	}
}
