package exp

import (
	"fmt"

	"github.com/s3pg/s3pg/internal/cypher"
	"github.com/s3pg/s3pg/internal/pg"
	"github.com/s3pg/s3pg/internal/rdf"
	"github.com/s3pg/s3pg/internal/sparql"
)

// Accuracy is the §5.2 metric: the fraction of ground-truth answer rows
// (a multiset, under the tr(µ) value conversion of Definition 3.2) that the
// method's answers contain.
func Accuracy(groundTruth, got []string) float64 {
	if len(groundTruth) == 0 {
		if len(got) == 0 {
			return 1
		}
		return 0
	}
	counts := make(map[string]int, len(got))
	for _, row := range got {
		counts[row]++
	}
	hit := 0
	for _, row := range groundTruth {
		if counts[row] > 0 {
			counts[row]--
			hit++
		}
	}
	return float64(hit) / float64(len(groundTruth))
}

// GroundTruth evaluates the query's SPARQL form over the RDF graph and
// returns the canonical answer multiset.
func GroundTruth(g *rdf.Graph, q Query) ([]string, error) {
	parsed, err := sparql.Parse(q.SPARQL)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", q.ID, err)
	}
	res, err := sparql.Eval(g, parsed)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", q.ID, err)
	}
	return res.Canonical(), nil
}

// PGAnswers evaluates the query's Cypher form over a property graph and
// returns the canonical answer multiset.
func PGAnswers(store *pg.Store, q Query) ([]string, error) {
	parsed, err := cypher.Parse(q.Cypher)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", q.ID, err)
	}
	res, err := cypher.Eval(store, parsed)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", q.ID, err)
	}
	return res.Canonical(), nil
}

// QueryAccuracy is one row of Table 6/7.
type QueryAccuracy struct {
	Query  Query
	GT     int
	S3PG   float64
	NeoSem float64
	RDF2PG float64
}

// MeasureAccuracy runs the full workload over the RDF ground truth and the
// three transformed graphs.
func MeasureAccuracy(e *Env, dataset string, queries []Query) ([]QueryAccuracy, error) {
	g := e.Graph(dataset)
	s3pgStore, _ := e.S3PG(dataset)
	neoStore := e.NeoSem(dataset)
	rdfStore := e.RDF2PG(dataset)

	var out []QueryAccuracy
	for _, q := range queries {
		gt, err := GroundTruth(g, q)
		if err != nil {
			return nil, err
		}
		row := QueryAccuracy{Query: q, GT: len(gt)}
		for _, m := range []struct {
			store *pg.Store
			dst   *float64
		}{
			{s3pgStore, &row.S3PG},
			{neoStore, &row.NeoSem},
			{rdfStore, &row.RDF2PG},
		} {
			got, err := PGAnswers(m.store, q)
			if err != nil {
				return nil, err
			}
			*m.dst = Accuracy(gt, got)
		}
		out = append(out, row)
	}
	return out, nil
}
