package exp_test

import (
	"bytes"
	"context"
	"testing"

	"github.com/s3pg/s3pg/internal/core"
	"github.com/s3pg/s3pg/internal/datagen"
	"github.com/s3pg/s3pg/internal/exp"
	"github.com/s3pg/s3pg/internal/pgschema"
	"github.com/s3pg/s3pg/internal/rio"
	"github.com/s3pg/s3pg/internal/shapeex"
)

// pipelineOutputs holds the byte-level artifacts of one full pipeline run:
// serialized graph round-trip, schema DDL, and both CSV exports.
type pipelineOutputs struct {
	ddl          string
	nodes, edges []byte
}

// runPipeline executes the complete S3PG pipeline — parallel N-Triples
// ingest, shape extraction, parallel transform, parallel CSV export — at the
// given worker count over a serialized dataset.
func runPipeline(t *testing.T, nt []byte, workers int) pipelineOutputs {
	t.Helper()
	ctx := context.Background()
	g, err := rio.LoadNTriplesParallel(ctx, bytes.NewReader(nt), int64(len(nt)), rio.Options{}, workers)
	if err != nil {
		t.Fatalf("workers=%d: ingest: %v", workers, err)
	}
	shapes := shapeex.Extract(g, shapeex.Options{MinSupport: 0.02})
	tr, err := core.TransformWith(ctx, g, shapes, core.Parsimonious, nil, core.TransformOptions{Workers: workers})
	if err != nil {
		t.Fatalf("workers=%d: transform: %v", workers, err)
	}
	var nodes, edges bytes.Buffer
	if err := tr.Store().WriteCSVParallel(&nodes, &edges, workers); err != nil {
		t.Fatalf("workers=%d: export: %v", workers, err)
	}
	return pipelineOutputs{pgschema.WriteDDL(tr.Schema()), nodes.Bytes(), edges.Bytes()}
}

// TestParallelPipelineByteIdenticalAcrossDatasets is the PR's acceptance
// check: for every Table 2 dataset, the full pipeline at workers > 1 produces
// output byte-identical to workers = 1.
func TestParallelPipelineByteIdenticalAcrossDatasets(t *testing.T) {
	for _, name := range exp.DatasetNames {
		t.Run(name, func(t *testing.T) {
			g := datagen.Generate(datagen.Profiles()[name], 0.0002, 1)
			var nt bytes.Buffer
			if err := rio.WriteNTriples(&nt, g); err != nil {
				t.Fatal(err)
			}
			want := runPipeline(t, nt.Bytes(), 1)
			for _, workers := range []int{2, 8} {
				got := runPipeline(t, nt.Bytes(), workers)
				if got.ddl != want.ddl {
					t.Fatalf("workers=%d: DDL differs", workers)
				}
				if !bytes.Equal(got.nodes, want.nodes) {
					t.Fatalf("workers=%d: nodes.csv differs (%d vs %d bytes)", workers, len(got.nodes), len(want.nodes))
				}
				if !bytes.Equal(got.edges, want.edges) {
					t.Fatalf("workers=%d: edges.csv differs (%d vs %d bytes)", workers, len(got.edges), len(want.edges))
				}
			}
		})
	}
}

// TestEnvWorkersDeterministic checks the experiment harness itself renders
// identical S3PG stores regardless of Config.Workers.
func TestEnvWorkersDeterministic(t *testing.T) {
	build := func(workers int) pipelineOutputs {
		var buf bytes.Buffer
		cfg := exp.DefaultConfig(&buf)
		cfg.Scale = 0.0002
		cfg.Workers = workers
		e := exp.NewEnv(cfg)
		store, schema := e.S3PG("DBpedia2022")
		var nodes, edges bytes.Buffer
		if err := store.WriteCSV(&nodes, &edges); err != nil {
			t.Fatal(err)
		}
		return pipelineOutputs{pgschema.WriteDDL(schema), nodes.Bytes(), edges.Bytes()}
	}
	want, got := build(1), build(4)
	if want.ddl != got.ddl || !bytes.Equal(want.nodes, got.nodes) || !bytes.Equal(want.edges, got.edges) {
		t.Fatal("Env outputs differ between Workers=1 and Workers=4")
	}
}
