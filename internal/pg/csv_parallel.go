package pg

import (
	"bytes"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
)

// WriteCSVParallel is WriteCSV with row encoding fanned out across workers:
// each worker renders a contiguous chunk of records into its own buffer
// through its own csv.Writer, and the buffers are written out in chunk
// order. Go's csv.Writer keeps no state across rows (rows always end in a
// single "\n" here, since UseCRLF is never set) and encodeProps emits sorted
// keys, so the concatenation is byte-identical to the sequential export.
// workers <= 1 runs WriteCSV unchanged. On an encoding error nothing is
// written to the failing file, and the error is the earliest chunk's —
// matching the statement sequential encoding would have rejected.
func (s *Store) WriteCSVParallel(nodeW, edgeW io.Writer, workers int) error {
	if workers <= 1 {
		return s.WriteCSV(nodeW, edgeW)
	}
	if err := writeChunked(nodeW, len(s.nodes), workers, func(w *csv.Writer, rec []string, i int) error {
		n := s.nodes[i]
		props, err := encodeProps(n.Props)
		if err != nil {
			return fmt.Errorf("pg: node %d: %w", n.ID, err)
		}
		rec[0] = strconv.FormatUint(uint64(n.ID), 10)
		rec[1] = strings.Join(n.Labels, ";")
		rec[2] = props
		return w.Write(rec[:3])
	}); err != nil {
		return err
	}
	return writeChunked(edgeW, len(s.edges), workers, func(w *csv.Writer, rec []string, i int) error {
		e := s.edges[i]
		props, err := encodeProps(e.Props)
		if err != nil {
			return fmt.Errorf("pg: edge %d: %w", e.ID, err)
		}
		rec[0] = strconv.FormatUint(uint64(e.ID), 10)
		rec[1] = strconv.FormatUint(uint64(e.From), 10)
		rec[2] = strconv.FormatUint(uint64(e.To), 10)
		rec[3] = e.Label
		rec[4] = props
		return w.Write(rec[:5])
	})
}

// writeChunked renders records [0, n) into per-chunk buffers on workers and
// concatenates them in order.
func writeChunked(out io.Writer, n, workers int, row func(w *csv.Writer, rec []string, i int) error) error {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	bufs := make([]bytes.Buffer, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := n*w/workers, n*(w+1)/workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			cw := csv.NewWriter(&bufs[w])
			rec := make([]string, 5)
			for i := lo; i < hi; i++ {
				if err := row(cw, rec, i); err != nil {
					errs[w] = err
					return
				}
			}
			cw.Flush()
			errs[w] = cw.Error()
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	for i := range bufs {
		if _, err := out.Write(bufs[i].Bytes()); err != nil {
			return err
		}
	}
	return nil
}
