package pg

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// The CSV bulk format mirrors the pipeline the paper uses to load the
// transformed graphs into a PG DBMS (the enhanced Neo4JWriter emitting CSV
// for neo4j-admin import): one node file and one edge file. Property
// records are serialized with a compact tagged encoding so value types
// survive the round trip; this is the hot path of the Table 4 "loading"
// measurements, so the codec avoids any per-record allocation beyond the
// output itself.
//
// Record syntax (inside one CSV cell):
//
//	record  = entry *( RS entry )
//	entry   = key US value
//	value   = "s:" escaped | "i:" digits | "f:" float | "b:" bool
//	        | "a:" [ element *( GS element ) ]
//	element = value (scalars only; arrays do not nest)
//
// where US/RS/GS are the ASCII unit/record/group separators, escaped in
// string payloads.

const (
	sepEntry = '\x1e' // RS: between key/value entries
	sepKV    = '\x1f' // US: between key and value
	sepElem  = '\x1d' // GS: between array elements
)

var propEscaper = strings.NewReplacer(
	"\\", "\\\\", "\x1d", "\\g", "\x1e", "\\r", "\x1f", "\\u",
)

var propUnescaper = strings.NewReplacer(
	"\\\\", "\\", "\\g", "\x1d", "\\r", "\x1e", "\\u", "\x1f",
)

func appendValue(b *strings.Builder, v Value, nested bool) error {
	switch x := v.(type) {
	case string:
		b.WriteString("s:")
		if strings.ContainsAny(x, "\\\x1d\x1e\x1f") {
			b.WriteString(propEscaper.Replace(x))
		} else {
			b.WriteString(x)
		}
	case int64:
		b.WriteString("i:")
		b.WriteString(strconv.FormatInt(x, 10))
	case float64:
		b.WriteString("f:")
		b.WriteString(strconv.FormatFloat(x, 'g', -1, 64))
	case bool:
		b.WriteString("b:")
		b.WriteString(strconv.FormatBool(x))
	case []Value:
		if nested {
			return fmt.Errorf("pg: nested arrays are not supported")
		}
		b.WriteString("a:")
		for i, e := range x {
			if i > 0 {
				b.WriteByte(sepElem)
			}
			if err := appendValue(b, e, true); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("pg: unsupported property value type %T", v)
	}
	return nil
}

func parseValue(s string) (Value, error) {
	if len(s) < 2 || s[1] != ':' {
		return nil, fmt.Errorf("pg: malformed value %q", s)
	}
	payload := s[2:]
	switch s[0] {
	case 's':
		if strings.ContainsRune(payload, '\\') {
			return propUnescaper.Replace(payload), nil
		}
		return payload, nil
	case 'i':
		return strconv.ParseInt(payload, 10, 64)
	case 'f':
		return strconv.ParseFloat(payload, 64)
	case 'b':
		return strconv.ParseBool(payload)
	case 'a':
		if payload == "" {
			return []Value{}, nil
		}
		parts := strings.Split(payload, string(sepElem))
		arr := make([]Value, len(parts))
		for i, p := range parts {
			v, err := parseValue(p)
			if err != nil {
				return nil, err
			}
			arr[i] = v
		}
		return arr, nil
	default:
		return nil, fmt.Errorf("pg: unknown value tag %q", s[0])
	}
}

func encodeProps(props map[string]Value) (string, error) {
	if len(props) == 0 {
		return "", nil
	}
	// Keys are emitted in sorted order so exports are byte-deterministic:
	// the crash-resume equivalence guarantee (a resumed run's outputs are
	// bit-identical to an uninterrupted run's) depends on it, and it makes
	// repeated exports diffable.
	keys := make([]string, 0, len(props))
	for k := range props {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(sepEntry)
		}
		if strings.ContainsAny(k, "\\\x1d\x1e\x1f") {
			b.WriteString(propEscaper.Replace(k))
		} else {
			b.WriteString(k)
		}
		b.WriteByte(sepKV)
		if err := appendValue(&b, props[k], false); err != nil {
			return "", fmt.Errorf("property %q: %w", k, err)
		}
	}
	return b.String(), nil
}

func decodeProps(s string) (map[string]Value, error) {
	if s == "" {
		return map[string]Value{}, nil
	}
	entries := strings.Split(s, string(sepEntry))
	props := make(map[string]Value, len(entries))
	for _, e := range entries {
		i := strings.IndexByte(e, sepKV)
		if i < 0 {
			return nil, fmt.Errorf("pg: malformed property entry %q", e)
		}
		key := e[:i]
		if strings.ContainsRune(key, '\\') {
			key = propUnescaper.Replace(key)
		}
		v, err := parseValue(e[i+1:])
		if err != nil {
			return nil, fmt.Errorf("property %q: %w", key, err)
		}
		props[key] = v
	}
	return props, nil
}

// WriteCSV exports the store: nodes as (id, labels, props) and edges as
// (id, from, to, label, props).
func (s *Store) WriteCSV(nodeW, edgeW io.Writer) error {
	nw := csv.NewWriter(nodeW)
	rec := make([]string, 3)
	for _, n := range s.nodes {
		props, err := encodeProps(n.Props)
		if err != nil {
			return fmt.Errorf("pg: node %d: %w", n.ID, err)
		}
		rec[0] = strconv.FormatUint(uint64(n.ID), 10)
		rec[1] = strings.Join(n.Labels, ";")
		rec[2] = props
		if err := nw.Write(rec); err != nil {
			return err
		}
	}
	nw.Flush()
	if err := nw.Error(); err != nil {
		return err
	}

	ew := csv.NewWriter(edgeW)
	erec := make([]string, 5)
	for _, e := range s.edges {
		props, err := encodeProps(e.Props)
		if err != nil {
			return fmt.Errorf("pg: edge %d: %w", e.ID, err)
		}
		erec[0] = strconv.FormatUint(uint64(e.ID), 10)
		erec[1] = strconv.FormatUint(uint64(e.From), 10)
		erec[2] = strconv.FormatUint(uint64(e.To), 10)
		erec[3] = e.Label
		erec[4] = props
		if err := ew.Write(erec); err != nil {
			return err
		}
	}
	ew.Flush()
	return ew.Error()
}

// LoadCSV bulk-imports a store previously exported with WriteCSV, rebuilding
// every index. This is the "loading" phase measured in Table 4.
func LoadCSV(nodeR, edgeR io.Reader) (*Store, error) {
	s := NewStore()
	nr := csv.NewReader(nodeR)
	nr.FieldsPerRecord = 3
	nr.ReuseRecord = true
	for {
		rec, err := nr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("pg: nodes csv: %w", err)
		}
		props, err := decodeProps(rec[2])
		if err != nil {
			return nil, fmt.Errorf("pg: nodes csv id %s: %w", rec[0], err)
		}
		var labels []string
		if rec[1] != "" {
			labels = strings.Split(rec[1], ";")
		}
		n := s.AddNode(labels, props)
		if got := strconv.FormatUint(uint64(n.ID), 10); got != rec[0] {
			return nil, fmt.Errorf("pg: nodes csv: non-contiguous id %s (assigned %s)", rec[0], got)
		}
	}

	er := csv.NewReader(edgeR)
	er.FieldsPerRecord = 5
	er.ReuseRecord = true
	for {
		rec, err := er.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("pg: edges csv: %w", err)
		}
		from, err := strconv.ParseUint(rec[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("pg: edges csv: bad from id %q", rec[1])
		}
		to, err := strconv.ParseUint(rec[2], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("pg: edges csv: bad to id %q", rec[2])
		}
		props, err := decodeProps(rec[4])
		if err != nil {
			return nil, fmt.Errorf("pg: edges csv id %s: %w", rec[0], err)
		}
		s.AddEdge(NodeID(from), NodeID(to), rec[3], props)
	}
	return s, nil
}

// Equal reports whether two stores are isomorphic under the identity mapping
// of creation order: same nodes (labels and records) and same edges in order.
// The transformation pipeline is deterministic, so order-sensitive equality
// is the right notion for its tests.
func (s *Store) Equal(o *Store) bool {
	if s.NumNodes() != o.NumNodes() || s.NumEdges() != o.NumEdges() {
		return false
	}
	for i, n := range s.nodes {
		m := o.nodes[i]
		if len(n.Labels) != len(m.Labels) {
			return false
		}
		for j := range n.Labels {
			if n.Labels[j] != m.Labels[j] {
				return false
			}
		}
		if !propsEqual(n.Props, m.Props) {
			return false
		}
	}
	for i, e := range s.edges {
		f := o.edges[i]
		if e.From != f.From || e.To != f.To || e.Label != f.Label || !propsEqual(e.Props, f.Props) {
			return false
		}
	}
	return true
}

func propsEqual(a, b map[string]Value) bool {
	if len(a) != len(b) {
		return false
	}
	for k, va := range a {
		vb, ok := b[k]
		if !ok || !ValueEqual(va, vb) {
			return false
		}
	}
	return true
}
