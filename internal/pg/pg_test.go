package pg

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddNodeLabelsDedupSorted(t *testing.T) {
	s := NewStore()
	n := s.AddNode([]string{"Student", "Person", "Student", ""}, nil)
	if len(n.Labels) != 2 || n.Labels[0] != "Person" || n.Labels[1] != "Student" {
		t.Fatalf("labels = %v", n.Labels)
	}
	if !n.HasLabel("Person") || n.HasLabel("Robot") {
		t.Fatal("HasLabel wrong")
	}
	if got := s.NodesByLabel("Person"); len(got) != 1 || got[0] != n.ID {
		t.Fatalf("NodesByLabel = %v", got)
	}
}

func TestIRIIndex(t *testing.T) {
	s := NewStore()
	a := s.AddNode([]string{"A"}, map[string]Value{"iri": "http://x/a"})
	if got := s.NodeByIRI("http://x/a"); got != a {
		t.Fatal("NodeByIRI missed")
	}
	// First writer wins on duplicate IRIs.
	s.AddNode([]string{"B"}, map[string]Value{"iri": "http://x/a"})
	if got := s.NodeByIRI("http://x/a"); got != a {
		t.Fatal("duplicate IRI displaced original")
	}
	if s.NodeByIRI("http://x/none") != nil {
		t.Fatal("missing IRI should be nil")
	}
	// SetProp registers too.
	c := s.AddNode([]string{"C"}, nil)
	s.SetProp(c.ID, "iri", "http://x/c")
	if got := s.NodeByIRI("http://x/c"); got != c {
		t.Fatal("SetProp did not index IRI")
	}
}

func TestEdgesAndAdjacency(t *testing.T) {
	s := NewStore()
	a := s.AddNode([]string{"A"}, nil)
	b := s.AddNode([]string{"B"}, nil)
	e := s.AddEdge(a.ID, b.ID, "knows", map[string]Value{"since": int64(2020)})
	if e.From != a.ID || e.To != b.ID || e.Label != "knows" {
		t.Fatalf("edge = %+v", e)
	}
	if got := s.Out(a.ID); len(got) != 1 || got[0] != e.ID {
		t.Fatalf("Out = %v", got)
	}
	if got := s.In(b.ID); len(got) != 1 || got[0] != e.ID {
		t.Fatalf("In = %v", got)
	}
	if got := s.EdgesByLabel("knows"); len(got) != 1 {
		t.Fatalf("EdgesByLabel = %v", got)
	}
	if s.RelTypes() != 1 {
		t.Fatalf("RelTypes = %d", s.RelTypes())
	}
}

func TestAddEdgeOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s := NewStore()
	s.AddEdge(0, 1, "x", nil)
}

func TestAddLabel(t *testing.T) {
	s := NewStore()
	n := s.AddNode([]string{"B"}, nil)
	s.AddLabel(n.ID, "A")
	s.AddLabel(n.ID, "A") // idempotent
	if len(n.Labels) != 2 || n.Labels[0] != "A" {
		t.Fatalf("labels = %v", n.Labels)
	}
	if got := s.NodesByLabel("A"); len(got) != 1 {
		t.Fatalf("NodesByLabel(A) = %v", got)
	}
}

func TestAppendProp(t *testing.T) {
	s := NewStore()
	n := s.AddNode(nil, nil)
	s.AppendProp(n.ID, "k", "a")
	if got := n.Props["k"]; got != "a" {
		t.Fatalf("scalar = %v", got)
	}
	s.AppendProp(n.ID, "k", "b")
	arr, ok := n.Props["k"].([]Value)
	if !ok || len(arr) != 2 || arr[0] != "a" || arr[1] != "b" {
		t.Fatalf("after second append = %v", n.Props["k"])
	}
	s.AppendProp(n.ID, "k", "c")
	arr = n.Props["k"].([]Value)
	if len(arr) != 3 || arr[2] != "c" {
		t.Fatalf("after third append = %v", arr)
	}
}

func TestValueEqual(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{"x", "x", true},
		{"x", "y", false},
		{int64(3), int64(3), true},
		{int64(3), float64(3), true}, // numeric promotion
		{float64(3.5), int64(3), false},
		{true, true, true},
		{true, false, false},
		{[]Value{"a", int64(1)}, []Value{"a", int64(1)}, true},
		{[]Value{"a"}, []Value{"a", "b"}, false},
		{[]Value{"a"}, "a", false},
	}
	for _, c := range cases {
		if got := ValueEqual(c.a, c.b); got != c.want {
			t.Errorf("ValueEqual(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestFormatValue(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{"s", "s"},
		{int64(42), "42"},
		{float64(2.5), "2.5"},
		{true, "true"},
		{nil, "null"},
		{[]Value{"a", int64(1)}, "[a, 1]"},
	}
	for _, c := range cases {
		if got := FormatValue(c.v); got != c.want {
			t.Errorf("FormatValue(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func buildSampleStore() *Store {
	s := NewStore()
	a := s.AddNode([]string{"Person", "Student"}, map[string]Value{
		"iri": "http://x/bob", "regNo": "Bs12", "scores": []Value{int64(1), int64(2)},
	})
	b := s.AddNode([]string{"Person", "Professor"}, map[string]Value{
		"iri": "http://x/alice", "tenure": true, "h": float64(41.5),
	})
	c := s.AddNode([]string{"STRING"}, map[string]Value{"value": "Intro, to \"Logic\""})
	s.AddEdge(a.ID, b.ID, "advisedBy", map[string]Value{"iri": "http://x/advisedBy"})
	s.AddEdge(a.ID, c.ID, "takesCourse", nil)
	return s
}

func TestCSVRoundTrip(t *testing.T) {
	s := buildSampleStore()
	var nodes, edges bytes.Buffer
	if err := s.WriteCSV(&nodes, &edges); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCSV(&nodes, &edges)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Equal(back) {
		t.Fatalf("csv round trip mismatch\nnodes:\n%s\nedges:\n%s", nodes.String(), edges.String())
	}
	// Indexes must be rebuilt.
	if back.NodeByIRI("http://x/bob") == nil {
		t.Fatal("IRI index not rebuilt after load")
	}
	if got := back.NodesByLabel("Person"); len(got) != 2 {
		t.Fatalf("label index not rebuilt: %v", got)
	}
}

func TestStoreEqualDetectsDifferences(t *testing.T) {
	a := buildSampleStore()
	b := buildSampleStore()
	if !a.Equal(b) {
		t.Fatal("identical stores not equal")
	}
	b.SetProp(0, "regNo", "ZZ")
	if a.Equal(b) {
		t.Fatal("prop change not detected")
	}
	c := buildSampleStore()
	c.AddNode([]string{"X"}, nil)
	if a.Equal(c) {
		t.Fatal("size change not detected")
	}
}

// Property: any randomly generated store survives the CSV round trip.
func TestQuickCSVRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewStore()
		nNodes := rng.Intn(20) + 1
		for i := 0; i < nNodes; i++ {
			props := map[string]Value{}
			for j := 0; j < rng.Intn(4); j++ {
				key := fmt.Sprintf("p%d", j)
				switch rng.Intn(5) {
				case 0:
					props[key] = fmt.Sprintf("v,\"%d\"\n", rng.Intn(100))
				case 1:
					props[key] = int64(rng.Intn(1000) - 500)
				case 2:
					props[key] = rng.Float64() * 100
				case 3:
					props[key] = rng.Intn(2) == 0
				default:
					props[key] = []Value{int64(1), int64(2), int64(3)}
				}
			}
			labels := []string{fmt.Sprintf("L%d", rng.Intn(4))}
			s.AddNode(labels, props)
		}
		for i := 0; i < rng.Intn(30); i++ {
			from := NodeID(rng.Intn(nNodes))
			to := NodeID(rng.Intn(nNodes))
			s.AddEdge(from, to, fmt.Sprintf("r%d", rng.Intn(3)), map[string]Value{"w": int64(i)})
		}
		var nodes, edges bytes.Buffer
		if err := s.WriteCSV(&nodes, &edges); err != nil {
			return false
		}
		back, err := LoadCSV(&nodes, &edges)
		if err != nil {
			return false
		}
		return s.Equal(back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
