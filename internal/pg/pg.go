// Package pg implements the property graph data model of Definition 2.4:
// a node- and edge-labelled directed attributed multigraph whose nodes and
// edges carry records (key → value maps). The in-memory Store indexes nodes
// by label and by the unique "iri" property, and edges by label, which is
// what the Cypher engine and the transformation algorithms traverse.
package pg

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Value is a property value: string, int64, float64, bool, or []Value for
// (homogeneous) arrays. The zero interface is "no value".
type Value any

// ValueEqual compares two property values, descending into arrays.
func ValueEqual(a, b Value) bool {
	la, aok := a.([]Value)
	lb, bok := b.([]Value)
	if aok != bok {
		return false
	}
	if aok {
		if len(la) != len(lb) {
			return false
		}
		for i := range la {
			if !ValueEqual(la[i], lb[i]) {
				return false
			}
		}
		return true
	}
	// Numeric cross-type equality (int64 vs float64).
	if fa, fb, ok := numericPair(a, b); ok {
		return fa == fb
	}
	return a == b
}

func numericPair(a, b Value) (float64, float64, bool) {
	fa, aok := toFloat(a)
	fb, bok := toFloat(b)
	return fa, fb, aok && bok
}

func toFloat(v Value) (float64, bool) {
	switch x := v.(type) {
	case int64:
		return float64(x), true
	case float64:
		return x, true
	default:
		return 0, false
	}
}

// FormatValue renders a value for display and CSV export.
func FormatValue(v Value) string {
	switch x := v.(type) {
	case nil:
		return "null"
	case string:
		return x
	case int64:
		return strconv.FormatInt(x, 10)
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	case bool:
		return strconv.FormatBool(x)
	case []Value:
		parts := make([]string, len(x))
		for i, e := range x {
			parts[i] = FormatValue(e)
		}
		return "[" + strings.Join(parts, ", ") + "]"
	default:
		return fmt.Sprint(x)
	}
}

// NodeID identifies a node within a Store.
type NodeID uint32

// EdgeID identifies an edge within a Store.
type EdgeID uint32

// Node is a property graph node: a set of labels and a record.
type Node struct {
	ID     NodeID
	Labels []string // sorted, duplicate-free
	Props  map[string]Value
}

// HasLabel reports whether the node carries the label.
func (n *Node) HasLabel(l string) bool {
	for _, x := range n.Labels {
		if x == l {
			return true
		}
	}
	return false
}

// Edge is a directed property graph edge with a single label and a record.
type Edge struct {
	ID    EdgeID
	From  NodeID
	To    NodeID
	Label string
	Props map[string]Value
}

// Store is an in-memory property graph. It is not safe for concurrent
// mutation; concurrent readers are safe once loading completes.
type Store struct {
	nodes []*Node
	edges []*Edge

	byLabel     map[string][]NodeID
	byEdgeLabel map[string][]EdgeID
	out         map[NodeID][]EdgeID
	in          map[NodeID][]EdgeID
	byIRI       map[string]NodeID // unique index on the "iri" property
}

// NewStore returns an empty property graph.
func NewStore() *Store {
	return &Store{
		byLabel:     make(map[string][]NodeID),
		byEdgeLabel: make(map[string][]EdgeID),
		out:         make(map[NodeID][]EdgeID),
		in:          make(map[NodeID][]EdgeID),
		byIRI:       make(map[string]NodeID),
	}
}

// NumNodes returns the node count.
func (s *Store) NumNodes() int { return len(s.nodes) }

// NumEdges returns the edge count.
func (s *Store) NumEdges() int { return len(s.edges) }

// RelTypes returns the number of distinct edge labels.
func (s *Store) RelTypes() int { return len(s.byEdgeLabel) }

// AddNode creates a node with the given labels and properties and returns it.
// Labels are deduplicated and sorted; the props map is owned by the store
// afterwards. If props contains a string "iri" property it is registered in
// the unique IRI index (first writer wins).
func (s *Store) AddNode(labels []string, props map[string]Value) *Node {
	set := make(map[string]bool, len(labels))
	clean := make([]string, 0, len(labels))
	for _, l := range labels {
		if l != "" && !set[l] {
			set[l] = true
			clean = append(clean, l)
		}
	}
	sort.Strings(clean)
	if props == nil {
		props = make(map[string]Value)
	}
	n := &Node{ID: NodeID(len(s.nodes)), Labels: clean, Props: props}
	s.nodes = append(s.nodes, n)
	for _, l := range clean {
		s.byLabel[l] = append(s.byLabel[l], n.ID)
	}
	if iri, ok := props["iri"].(string); ok {
		if _, exists := s.byIRI[iri]; !exists {
			s.byIRI[iri] = n.ID
		}
	}
	return n
}

// AddEdge creates a directed labelled edge. It panics if an endpoint id is
// out of range, which always indicates a caller bug.
func (s *Store) AddEdge(from, to NodeID, label string, props map[string]Value) *Edge {
	if int(from) >= len(s.nodes) || int(to) >= len(s.nodes) {
		panic(fmt.Sprintf("pg: edge endpoint out of range: %d -> %d (have %d nodes)", from, to, len(s.nodes)))
	}
	if props == nil {
		props = make(map[string]Value)
	}
	e := &Edge{ID: EdgeID(len(s.edges)), From: from, To: to, Label: label, Props: props}
	s.edges = append(s.edges, e)
	s.byEdgeLabel[label] = append(s.byEdgeLabel[label], e.ID)
	s.out[from] = append(s.out[from], e.ID)
	s.in[to] = append(s.in[to], e.ID)
	return e
}

// Node returns the node by id, or nil when out of range.
func (s *Store) Node(id NodeID) *Node {
	if int(id) >= len(s.nodes) {
		return nil
	}
	return s.nodes[id]
}

// Edge returns the edge by id, or nil when out of range.
func (s *Store) Edge(id EdgeID) *Edge {
	if int(id) >= len(s.edges) {
		return nil
	}
	return s.edges[id]
}

// Nodes returns all nodes in creation order.
func (s *Store) Nodes() []*Node { return s.nodes }

// Edges returns all edges in creation order.
func (s *Store) Edges() []*Edge { return s.edges }

// NodesByLabel returns the ids of nodes carrying the label.
func (s *Store) NodesByLabel(label string) []NodeID { return s.byLabel[label] }

// EdgesByLabel returns the ids of edges carrying the label.
func (s *Store) EdgesByLabel(label string) []EdgeID { return s.byEdgeLabel[label] }

// Out returns the outgoing edge ids of the node.
func (s *Store) Out(id NodeID) []EdgeID { return s.out[id] }

// In returns the incoming edge ids of the node.
func (s *Store) In(id NodeID) []EdgeID { return s.in[id] }

// NodeByIRI returns the node whose "iri" property equals iri, or nil.
func (s *Store) NodeByIRI(iri string) *Node {
	id, ok := s.byIRI[iri]
	if !ok {
		return nil
	}
	return s.nodes[id]
}

// AddLabel adds a label to an existing node, keeping indexes consistent.
func (s *Store) AddLabel(id NodeID, label string) {
	n := s.nodes[id]
	if label == "" || n.HasLabel(label) {
		return
	}
	n.Labels = append(n.Labels, label)
	sort.Strings(n.Labels)
	s.byLabel[label] = append(s.byLabel[label], id)
}

// SetProp sets a property on a node. Setting "iri" registers the node in the
// IRI index when the slot is free.
func (s *Store) SetProp(id NodeID, key string, v Value) {
	n := s.nodes[id]
	n.Props[key] = v
	if key == "iri" {
		if iri, ok := v.(string); ok {
			if _, exists := s.byIRI[iri]; !exists {
				s.byIRI[iri] = id
			}
		}
	}
}

// AppendProp appends a value to a property, promoting a scalar to an array.
// It is the primitive used for multi-valued key/value properties.
func (s *Store) AppendProp(id NodeID, key string, v Value) {
	n := s.nodes[id]
	cur, ok := n.Props[key]
	if !ok {
		n.Props[key] = v
		return
	}
	if arr, isArr := cur.([]Value); isArr {
		n.Props[key] = append(arr, v)
		return
	}
	n.Props[key] = []Value{cur, v}
}

// Labels returns all distinct node labels, sorted.
func (s *Store) Labels() []string {
	out := make([]string, 0, len(s.byLabel))
	for l := range s.byLabel {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// EdgeLabels returns all distinct edge labels, sorted.
func (s *Store) EdgeLabels() []string {
	out := make([]string, 0, len(s.byEdgeLabel))
	for l := range s.byEdgeLabel {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}
