package pg

import (
	"bytes"
	"fmt"
	"testing"
)

// messyStore builds a store with every value shape the codec supports,
// including separator characters that need escaping.
func messyStore() *Store {
	s := NewStore()
	for i := 0; i < 500; i++ {
		props := map[string]Value{
			"iri":  fmt.Sprintf("http://ex.org/n%d", i),
			"num":  int64(i),
			"frac": float64(i) / 7,
			"flag": i%2 == 0,
			"arr":  []Value{"a", int64(i), false},
		}
		if i%7 == 0 {
			props["tricky\x1fkey"] = "value\x1ewith\x1dseps\\and backslash"
		}
		s.AddNode([]string{fmt.Sprintf("L%d", i%5), "Common"}, props)
	}
	for i := 0; i < 1200; i++ {
		var props map[string]Value
		if i%3 == 0 {
			props = map[string]Value{"weight": float64(i), "note": "n\x1e"}
		}
		s.AddEdge(NodeID(i%500), NodeID((i*13)%500), fmt.Sprintf("e%d", i%11), props)
	}
	return s
}

func TestWriteCSVParallelByteIdentical(t *testing.T) {
	s := messyStore()
	var wantN, wantE bytes.Buffer
	if err := s.WriteCSV(&wantN, &wantE); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8, 64} {
		var gotN, gotE bytes.Buffer
		if err := s.WriteCSVParallel(&gotN, &gotE, workers); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !bytes.Equal(wantN.Bytes(), gotN.Bytes()) {
			t.Fatalf("workers=%d: nodes.csv differs (%d vs %d bytes)", workers, wantN.Len(), gotN.Len())
		}
		if !bytes.Equal(wantE.Bytes(), gotE.Bytes()) {
			t.Fatalf("workers=%d: edges.csv differs (%d vs %d bytes)", workers, wantE.Len(), gotE.Len())
		}
	}
}

func TestWriteCSVParallelEmptyStore(t *testing.T) {
	s := NewStore()
	var n, e bytes.Buffer
	if err := s.WriteCSVParallel(&n, &e, 8); err != nil {
		t.Fatal(err)
	}
	if n.Len() != 0 || e.Len() != 0 {
		t.Fatalf("empty store wrote %d/%d bytes", n.Len(), e.Len())
	}
}

func TestWriteCSVParallelErrorMatchesSequential(t *testing.T) {
	s := NewStore()
	s.AddNode(nil, map[string]Value{"ok": "fine"})
	s.AddNode(nil, map[string]Value{"bad": struct{}{}}) // unsupported type
	var n1, e1, n2, e2 bytes.Buffer
	err1 := s.WriteCSV(&n1, &e1)
	err2 := s.WriteCSVParallel(&n2, &e2, 4)
	if err1 == nil || err2 == nil {
		t.Fatalf("expected both to fail, got %v / %v", err1, err2)
	}
	if err1.Error() != err2.Error() {
		t.Fatalf("error texts differ:\nsequential: %v\nparallel:   %v", err1, err2)
	}
}
