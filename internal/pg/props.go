package pg

// EncodeProps serializes a property record in the tagged CSV cell codec
// (see the format comment in csv.go). Keys are emitted in sorted order, so
// equal records always encode to equal strings — the property that lets the
// incremental-transformation layer use encoded records as change-detection
// fingerprints and stream them to change subscribers verbatim.
func EncodeProps(props map[string]Value) (string, error) { return encodeProps(props) }

// DecodeProps parses a record serialized by EncodeProps.
func DecodeProps(s string) (map[string]Value, error) { return decodeProps(s) }
