package pg

import "testing"

func TestCloneIsDeepAndEqual(t *testing.T) {
	s := NewStore()
	a := s.AddNode([]string{"Person"}, map[string]Value{"iri": "http://x/a", "name": "A"})
	b := s.AddNode([]string{"Dept"}, map[string]Value{"iri": "http://x/b"})
	s.AddEdge(a.ID, b.ID, "worksFor", map[string]Value{"since": int64(2020)})
	s.AppendProp(a.ID, "alias", "a1")
	s.AppendProp(a.ID, "alias", "a2")

	c := s.Clone()
	if !s.Equal(c) {
		t.Fatal("clone not equal to original")
	}

	// Mutations on the original must not leak into the clone.
	s.AddLabel(a.ID, "Admin")
	s.SetProp(a.ID, "name", "A2")
	s.AppendProp(a.ID, "alias", "a3")
	s.AddEdge(b.ID, a.ID, "manages", nil)
	extra := s.AddNode([]string{"Person"}, map[string]Value{"iri": "http://x/c"})
	_ = extra

	if c.NumNodes() != 2 || c.NumEdges() != 1 {
		t.Fatalf("clone grew: %d nodes, %d edges", c.NumNodes(), c.NumEdges())
	}
	cn := c.Node(a.ID)
	if cn.HasLabel("Admin") {
		t.Fatal("label mutation leaked into clone")
	}
	if cn.Props["name"] != "A2" && cn.Props["name"] == "A" {
		// expected: clone keeps the original value
	} else if cn.Props["name"] != "A" {
		t.Fatalf("prop mutation leaked into clone: %v", cn.Props["name"])
	}
	if list, ok := cn.Props["alias"].([]Value); !ok || len(list) != 2 {
		t.Fatalf("multi-valued prop leaked or lost: %v", cn.Props["alias"])
	}
	if got := len(c.NodesByLabel("Person")); got != 1 {
		t.Fatalf("label index leaked: %d Person nodes in clone", got)
	}
	if c.NodeByIRI("http://x/c") != nil {
		t.Fatal("iri index leaked into clone")
	}
	if len(c.Out(b.ID)) != 0 {
		t.Fatal("adjacency index leaked into clone")
	}

	// And the other direction: mutating the clone leaves the original alone.
	c.SetProp(b.ID, "name", "B")
	if _, ok := s.Node(b.ID).Props["name"]; ok {
		t.Fatal("clone mutation leaked into original")
	}
}
