package pg

// Clone returns a deep copy of the store: nodes, edges, their label and
// property data, and all indexes. Mutating the clone (or the original)
// never affects the other, which is what lets the serving layer freeze a
// consistent snapshot of a live graph while delta application continues on
// the original.
func (s *Store) Clone() *Store {
	c := &Store{
		nodes:       make([]*Node, len(s.nodes)),
		edges:       make([]*Edge, len(s.edges)),
		byLabel:     make(map[string][]NodeID, len(s.byLabel)),
		byEdgeLabel: make(map[string][]EdgeID, len(s.byEdgeLabel)),
		out:         make(map[NodeID][]EdgeID, len(s.out)),
		in:          make(map[NodeID][]EdgeID, len(s.in)),
		byIRI:       make(map[string]NodeID, len(s.byIRI)),
	}
	for i, n := range s.nodes {
		c.nodes[i] = &Node{
			ID:     n.ID,
			Labels: append([]string(nil), n.Labels...),
			Props:  cloneProps(n.Props),
		}
	}
	for i, e := range s.edges {
		c.edges[i] = &Edge{
			ID:    e.ID,
			From:  e.From,
			To:    e.To,
			Label: e.Label,
			Props: cloneProps(e.Props),
		}
	}
	for l, ids := range s.byLabel {
		c.byLabel[l] = append([]NodeID(nil), ids...)
	}
	for l, ids := range s.byEdgeLabel {
		c.byEdgeLabel[l] = append([]EdgeID(nil), ids...)
	}
	for id, ids := range s.out {
		c.out[id] = append([]EdgeID(nil), ids...)
	}
	for id, ids := range s.in {
		c.in[id] = append([]EdgeID(nil), ids...)
	}
	for iri, id := range s.byIRI {
		c.byIRI[iri] = id
	}
	return c
}

// cloneProps copies a property map, including multi-valued ([]Value)
// entries, which AppendProp mutates in place on the original.
func cloneProps(props map[string]Value) map[string]Value {
	c := make(map[string]Value, len(props))
	for k, v := range props {
		if list, ok := v.([]Value); ok {
			c[k] = append([]Value(nil), list...)
			continue
		}
		c[k] = v
	}
	return c
}
