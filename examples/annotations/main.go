// annotations demonstrates the two §7 future-work extensions this
// implementation delivers beyond the paper:
//
//  1. RDF-star: quoted-triple annotations (<< s p o >> key value) map onto
//     the property graph's native statement metadata — edge properties —
//     and round-trip losslessly;
//  2. Optimize: non-parsimonious graphs are compacted after the fact,
//     folding uniform literal value nodes back into key/value properties.
package main

import (
	"fmt"
	"log"

	"github.com/s3pg/s3pg"
)

const data = `
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
@prefix ex:  <http://example.org/univ#> .

ex:bob a ex:Student ; ex:name "Bob" ; ex:advisedBy ex:alice .
ex:alice a ex:Professor ; ex:name "Alice" .

# RDF-star: metadata about the advisedBy statement itself.
<< ex:bob ex:advisedBy ex:alice >> ex:since "2021"^^xsd:integer .
<< ex:bob ex:advisedBy ex:alice >> ex:confirmedBy "Registrar Office" .
`

const shapesTTL = `
@prefix sh:  <http://www.w3.org/ns/shacl#> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
@prefix ex:  <http://example.org/univ#> .
ex:StudentShape a sh:NodeShape ; sh:targetClass ex:Student ;
  sh:property [ sh:path ex:name ; sh:datatype xsd:string ; sh:minCount 1 ; sh:maxCount 1 ] ;
  sh:property [ sh:path ex:advisedBy ; sh:class ex:Professor ; sh:minCount 1 ] .
ex:ProfessorShape a sh:NodeShape ; sh:targetClass ex:Professor ;
  sh:property [ sh:path ex:name ; sh:datatype xsd:string ; sh:minCount 1 ; sh:maxCount 1 ] .
`

func main() {
	g, err := s3pg.ParseTurtle(data)
	if err != nil {
		log.Fatal(err)
	}
	shapes, err := s3pg.ShapesFromTurtle(shapesTTL)
	if err != nil {
		log.Fatal(err)
	}

	// Non-parsimonious: every property becomes edges + value nodes, the
	// monotone encoding for evolving graphs.
	store, schema, err := s3pg.Transform(g, shapes, s3pg.NonParsimonious)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("non-parsimonious: %d nodes, %d edges\n", store.NumNodes(), store.NumEdges())

	// The RDF-star annotations are edge properties, queryable in Cypher.
	res, err := s3pg.EvalCypher(store, `
MATCH (s:Student)-[r:advisedBy]->(p:Professor)
RETURN s.iri AS student, p.iri AS advisor, r.since AS since, r.confirmedBy AS via`)
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range res.Rows {
		fmt.Printf("advisedBy since %v, confirmed by %q\n", row[2], row[3])
	}

	// Optimize folds the uniform literal value nodes (name) back into
	// key/value properties — §7's "how and when to optimize them".
	opt, optSchema, err := s3pg.Optimize(store, schema)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimized:        %d nodes, %d edges\n", opt.NumNodes(), opt.NumEdges())

	// Still perfectly invertible — including the quoted triples.
	back, err := s3pg.InverseData(opt, optSchema)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("round trip exact:", g.Equal(back))
}
