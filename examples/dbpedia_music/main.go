// dbpedia_music reproduces the paper's introduction example: DBpedia music
// albums whose dbp:writer values mix IRIs (dbr:Billy_Montana) and string
// literals ("Tofer Brown"). It shows why naive transformations lose answers
// on such heterogeneous multi-type properties, and that S3PG does not.
package main

import (
	"fmt"
	"log"

	"github.com/s3pg/s3pg"
	"github.com/s3pg/s3pg/internal/baseline/neosem"
	"github.com/s3pg/s3pg/internal/baseline/rdf2pgx"
	"github.com/s3pg/s3pg/internal/fixtures"
)

func main() {
	g := fixtures.MusicAlbumGraph()
	shapes := fixtures.MusicAlbumShapes()

	// Ground truth over RDF: every album with each of its writers.
	gt, err := s3pg.EvalSPARQL(g, `
PREFIX dbo: <http://dbpedia.org/ontology/>
PREFIX dbp: <http://dbpedia.org/property/>
SELECT ?album ?writer WHERE { ?album a dbo:Album ; dbp:writer ?writer . }`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SPARQL ground truth: %d (album, writer) answers\n", gt.Len())
	for _, row := range gt.Rows {
		fmt.Printf("  %-50v %v\n", row[0].Value, row[1].Value)
	}

	// The same retrieval over each transformation. The Cypher covers both
	// realizations: writers stored as node properties and as relationships.
	const query = `
MATCH (a:Album) UNWIND a.writer AS w RETURN a.iri AS album, w AS writer
UNION ALL
MATCH (a:Album)-[:writer]->(t) RETURN a.iri AS album, COALESCE(t.value, t.iri) AS writer`

	run := func(name string, store *s3pg.Store) {
		res, err := s3pg.EvalCypher(store, query)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s: %d of %d answers\n", name, res.Len(), gt.Len())
		for _, row := range res.Rows {
			fmt.Printf("  %-50v %v\n", row[0], row[1])
		}
	}

	s3store, _, err := s3pg.Transform(g, shapes, s3pg.Parsimonious)
	if err != nil {
		log.Fatal(err)
	}
	run("S3PG", s3store)

	neoStore, neoStats := neosem.Transform(g)
	run("NeoSemantics", neoStore)
	fmt.Printf("  (NeoSemantics dropped %d literal value(s) to array coercion)\n", neoStats.DroppedValues)

	rdfStore, rdfStats := rdf2pgx.Transform(g)
	run("rdf2pg (schema-dependent direct mapping)", rdfStore)
	fmt.Printf("  (rdf2pg dropped %d literal(s): writer was declared an object property)\n",
		rdfStats.DroppedLiterals)
}
