// clinicaltrials runs the full paper pipeline on a Bio2RDF Clinical
// Trials-like knowledge graph: generate the dataset, extract SHACL shapes
// from the instance data (the QSE step), transform to a property graph,
// verify schema conformance, and run Cypher analytics over the result.
package main

import (
	"fmt"
	"log"

	"github.com/s3pg/s3pg"
	"github.com/s3pg/s3pg/internal/datagen"
)

func main() {
	// 1. Generate a Bio2RDF CT-like graph (≈0.05% of the real dataset).
	profile := datagen.Bio2RDFCT()
	g := datagen.Generate(profile, 0.0005, 42)
	fmt.Printf("generated %s: %d triples\n", profile.Name, g.Len())

	// 2. Extract SHACL shapes from the instance data. The extraction prunes
	// rare dirty values (QSE-style), so the graph does not fully conform —
	// real KGs rarely do.
	shapes := s3pg.ExtractShapes(g, 0.02)
	shaclViolations := len(s3pg.ValidateSHACL(g, shapes))
	fmt.Printf("extracted %d node shapes; %d SHACL violations from dirty values\n",
		shapes.Len(), shaclViolations)

	// 3. Transform to a property graph.
	store, schema, err := s3pg.Transform(g, shapes, s3pg.Parsimonious)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("property graph: %d nodes, %d edges, %d relationship types\n",
		store.NumNodes(), store.NumEdges(), store.RelTypes())

	// 4. Semantics preservation cuts both ways: the dirty values that
	// violate the SHACL shapes violate the PG-Schema too — but they are
	// still in the graph, not silently dropped.
	pgViolations := len(s3pg.CheckPG(store, schema))
	fmt.Printf("PG-Schema violations: %d (non-conforming RDF ⇒ non-conforming PG: %v)\n",
		pgViolations, (shaclViolations == 0) == (pgViolations == 0))

	// 5. Analytics: trials per condition (top 5).
	top, err := s3pg.EvalCypher(store, `
MATCH (s:ClinicalStudy)-[:condition]->(c:Condition)
RETURN c.label AS condition, COUNT(*) AS trials
ORDER BY trials DESC, condition
LIMIT 5`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntop conditions by number of trials:")
	for _, row := range top.Rows {
		fmt.Printf("  %-30v %v\n", row[0], row[1])
	}

	// 6. Heterogeneous sponsors: some are Sponsor entities, some are plain
	// names. Both are reachable — nothing was lost in the transformation.
	sponsors, err := s3pg.EvalCypher(store, `
MATCH (s:ClinicalStudy)-[:sponsor]->(t)
RETURN COUNT(*) AS total, COUNT(t.iri) AS entities, COUNT(t.value) AS names`)
	if err != nil {
		log.Fatal(err)
	}
	row := sponsors.Rows[0]
	fmt.Printf("\nsponsor values: %v total = %v entity-valued + %v literal-valued\n",
		row[0], row[1], row[2])

	// 7. Large studies with their phases, through a numeric filter.
	big, err := s3pg.EvalCypher(store, `
MATCH (s:ClinicalStudy)
WHERE s.enrollment > 90000
RETURN s.phase AS phase, COUNT(*) AS studies
ORDER BY phase`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nstudies with enrollment > 90000, by phase:")
	for _, r := range big.Rows {
		fmt.Printf("  %-20v %v\n", r[0], r[1])
	}

	// 8. The whole thing is reversible.
	back, err := s3pg.InverseData(store, schema)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nround trip exact: %v\n", g.Equal(back))
}
