// evolving demonstrates S3PG's monotonicity (§4.2.1/§5.4): an evolving
// knowledge graph is transformed once, and subsequent snapshots are
// incorporated by transforming only the delta — at a fraction of the cost
// of a full re-transformation, with an identical result.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/s3pg/s3pg"
	"github.com/s3pg/s3pg/internal/datagen"
)

func main() {
	profile := datagen.DBpedia2022()
	base := datagen.Generate(profile, 0.0005, 7)
	delta := datagen.Evolve(base, profile, 0.0521, 1007) // the paper's ≈5.21% growth
	fmt.Printf("base snapshot: %d triples; delta: %d triples (%.2f%%)\n",
		base.Len(), delta.Len(), 100*float64(delta.Len())/float64(base.Len()))

	shapes := s3pg.ExtractShapes(base, 0.02)

	// The non-parsimonious mode keeps the transformation monotone even when
	// the schema evolves, so it is the right choice for changing graphs.
	tr, err := s3pg.NewTransformer(shapes, s3pg.NonParsimonious)
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	if err := tr.Apply(base); err != nil {
		log.Fatal(err)
	}
	fullTime := time.Since(start)
	fmt.Printf("initial transformation: %v (%d nodes, %d edges)\n",
		fullTime.Round(time.Millisecond), tr.Store().NumNodes(), tr.Store().NumEdges())

	start = time.Now()
	if err := tr.Apply(delta); err != nil {
		log.Fatal(err)
	}
	deltaTime := time.Since(start)
	fmt.Printf("incremental delta:      %v (%d nodes, %d edges)\n",
		deltaTime.Round(time.Millisecond), tr.Store().NumNodes(), tr.Store().NumEdges())

	// Compare against re-transforming everything from scratch.
	merged := base.Clone()
	merged.AddAll(delta)
	start = time.Now()
	fresh, _, err := s3pg.Transform(merged, shapes, s3pg.NonParsimonious)
	if err != nil {
		log.Fatal(err)
	}
	scratchTime := time.Since(start)
	fmt.Printf("full re-transformation: %v (%d nodes, %d edges)\n",
		scratchTime.Round(time.Millisecond), fresh.NumNodes(), fresh.NumEdges())
	fmt.Printf("incremental saves %.1f%% of the re-transformation time\n",
		100*(1-float64(deltaTime)/float64(scratchTime)))

	// Monotonicity (Definition 3.4): the incrementally maintained PG decodes
	// to exactly the merged snapshot.
	back, err := s3pg.InverseData(tr.Store(), tr.Schema())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("F(S1) ∪ F(Δ) ≅ F(S1 ∪ Δ): %v\n", merged.Equal(back))
}
