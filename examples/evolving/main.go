// evolving demonstrates S3PG's change-based incremental maintenance
// (§4.2.1/§5.4): a knowledge graph is transformed once and then evolves
// through typed change batches. A grow-only batch rides the monotone fast
// path (Prop 4.3); mixed churn — deletions and in-place literal mutations,
// arriving as a SPARQL Update request — falls back to a deterministic
// rebuild (Prop 4.1 invertibility makes the removed statements exactly
// identifiable). Either way the maintained property graph must be
// byte-identical to a full re-transformation of the evolved snapshot, and
// this example asserts exactly that after every batch.
package main

import (
	"bytes"
	"fmt"
	"log"
	"strings"
	"time"

	"github.com/s3pg/s3pg"
	"github.com/s3pg/s3pg/internal/datagen"
	"github.com/s3pg/s3pg/internal/rdf"
)

// renderExports produces the three bulk-load artifacts of a store/schema pair.
func renderExports(store *s3pg.Store, schema *s3pg.PGSchema) (string, string, string) {
	var nodes, edges bytes.Buffer
	if err := store.WriteCSV(&nodes, &edges); err != nil {
		log.Fatal(err)
	}
	return nodes.String(), edges.String(), s3pg.WriteDDL(schema)
}

// assertIdentical re-transforms the evolved RDF graph from scratch and
// compares all three exports byte-for-byte with the incremental state. It
// returns how long the from-scratch transformation took.
func assertIdentical(state *s3pg.DeltaState, shapes *s3pg.ShapeSchema, label string) time.Duration {
	var gotNodes, gotEdges bytes.Buffer
	if err := state.WriteCSV(&gotNodes, &gotEdges); err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	store, schema, err := s3pg.Transform(state.Graph(), shapes, s3pg.NonParsimonious)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	wantNodes, wantEdges, wantDDL := renderExports(store, schema)
	if gotNodes.String() != wantNodes || gotEdges.String() != wantEdges || state.SchemaDDL() != wantDDL {
		log.Fatalf("%s: incremental state diverged from the full re-transformation", label)
	}
	fmt.Printf("  %s: nodes.csv, edges.csv, schema.ddl byte-identical to a full re-transformation\n", label)
	return elapsed
}

// sparqlUpdate renders a typed delta as the SPARQL Update request a client
// would send (Triple.String emits N-Triples statements, valid in the
// Turtle-parsed data blocks).
func sparqlUpdate(d *s3pg.Delta) string {
	var b strings.Builder
	b.WriteString("DELETE DATA {\n")
	for _, t := range d.Deletes {
		fmt.Fprintf(&b, "%s\n", t)
	}
	b.WriteString("} ;\nINSERT DATA {\n")
	for _, t := range d.Inserts {
		fmt.Fprintf(&b, "%s\n", t)
	}
	b.WriteString("}")
	return b.String()
}

func main() {
	profile := datagen.DBpedia2022()
	base := datagen.Generate(profile, 0.0005, 7)
	shapes := s3pg.ExtractShapes(base, 0.02)

	// The non-parsimonious mode keeps the transformation monotone even when
	// the schema evolves, so it is the right choice for changing graphs.
	start := time.Now()
	state, err := s3pg.NewDeltaState(base, shapes, s3pg.NonParsimonious)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial transformation: %d triples in %v (%d nodes, %d edges)\n",
		base.Len(), time.Since(start).Round(time.Millisecond),
		state.Store().NumNodes(), state.Store().NumEdges())

	// Batch 1 — grow-only: new property values on existing subjects (the
	// paper's ≈5.21% growth). No deletions and no new rdf:type statements,
	// so this is the Prop 4.3 monotone case and takes the fast path.
	growth := &s3pg.Delta{}
	datagen.Evolve(base, profile, 0.0521, 1007).ForEach(func(t s3pg.Triple) bool {
		if t.P != rdf.A {
			growth.Inserts = append(growth.Inserts, t)
		}
		return true
	})
	start = time.Now()
	pd, err := state.ApplyDelta(growth)
	if err != nil {
		log.Fatal(err)
	}
	fastTime := time.Since(start)
	fmt.Printf("grow-only batch: +%d triples applied in %v (%d node changes, %d edge changes)\n",
		len(growth.Inserts), fastTime.Round(time.Microsecond), len(pd.Nodes), len(pd.Edges))
	fullTime := assertIdentical(state, shapes, "after growth")
	fmt.Printf("  fast path: %v vs %v from scratch (%.0fx faster, %d fast applies / %d rebuilds)\n",
		fastTime.Round(time.Microsecond), fullTime.Round(time.Microsecond),
		float64(fullTime)/float64(fastTime), state.FastApplies(), state.Rebuilds())

	// Batch 2 — mixed churn: deletions, in-place literal mutations, and more
	// growth, arriving the way a live service receives it: as a SPARQL
	// Update request.
	churn := datagen.EvolveChurn(state.Graph(), profile,
		datagen.Churn{AddFrac: 0.02, DeleteFrac: 0.01, MutateFrac: 0.01}, 2024)
	request := sparqlUpdate(churn)
	parsed, err := s3pg.ParseUpdate(request)
	if err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	pd, err = state.ApplyDelta(parsed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("churn batch: -%d/+%d triples (SPARQL Update, %d bytes) applied in %v (%d node changes, %d edge changes)\n",
		len(parsed.Deletes), len(parsed.Inserts), len(request),
		time.Since(start).Round(time.Microsecond), len(pd.Nodes), len(pd.Edges))
	assertIdentical(state, shapes, "after churn")
	fmt.Printf("  deletions force the deterministic rebuild path (%d fast applies / %d rebuilds)\n",
		state.FastApplies(), state.Rebuilds())
}
