// Quickstart walks the paper's running example (Figure 2) end to end:
// the university RDF graph and its SHACL shape schema are transformed into
// a property graph and PG-Schema, queried with Cypher, and inverted back.
package main

import (
	"fmt"
	"log"

	"github.com/s3pg/s3pg"
)

const shapesTurtle = `
@prefix sh:    <http://www.w3.org/ns/shacl#> .
@prefix xsd:   <http://www.w3.org/2001/XMLSchema#> .
@prefix ex:    <http://example.org/univ#> .
@prefix shape: <http://example.org/shapes#> .

shape:Person a sh:NodeShape ;
  sh:targetClass ex:Person ;
  sh:property [ sh:path ex:name ; sh:datatype xsd:string ; sh:minCount 1 ; sh:maxCount 1 ] .

shape:Student a sh:NodeShape ;
  sh:targetClass ex:Student ;
  sh:node shape:Person ;
  sh:property [ sh:path ex:regNo ; sh:datatype xsd:string ; sh:minCount 1 ; sh:maxCount 1 ] ;
  sh:property [
    sh:path ex:advisedBy ;
    sh:or ( [ sh:class ex:Person ] [ sh:class ex:Professor ] ) ;
    sh:minCount 1 ] .

shape:GraduateStudent a sh:NodeShape ;
  sh:targetClass ex:GraduateStudent ;
  sh:node shape:Student ;
  sh:property [
    sh:path ex:takesCourse ;
    sh:or ( [ sh:class ex:Course ] [ sh:class ex:GraduateCourse ] [ sh:datatype xsd:string ] ) ;
    sh:minCount 1 ] .

shape:Professor a sh:NodeShape ;
  sh:targetClass ex:Professor ;
  sh:node shape:Person ;
  sh:property [ sh:path ex:worksFor ; sh:class ex:Department ; sh:minCount 1 ; sh:maxCount 1 ] .

shape:Course a sh:NodeShape ;
  sh:targetClass ex:Course ;
  sh:property [ sh:path ex:name ; sh:datatype xsd:string ; sh:minCount 1 ; sh:maxCount 1 ] .

shape:GraduateCourse a sh:NodeShape ;
  sh:targetClass ex:GraduateCourse ;
  sh:node shape:Course .

shape:Department a sh:NodeShape ;
  sh:targetClass ex:Department ;
  sh:property [ sh:path ex:name ; sh:datatype xsd:string ; sh:minCount 1 ; sh:maxCount 1 ] .
`

const dataTurtle = `
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
@prefix ex:  <http://example.org/univ#> .

ex:bob a ex:Person, ex:Student, ex:GraduateStudent ;
  ex:name "Bob" ;
  ex:regNo "Bs12" ;
  ex:advisedBy ex:alice ;
  ex:takesCourse ex:DB, "Intro to Logic" .

ex:alice a ex:Person, ex:Professor ;
  ex:name "Alice" ;
  ex:worksFor ex:CS .

ex:DB a ex:Course, ex:GraduateCourse ; ex:name "Databases" .
ex:CS a ex:Department ; ex:name "Computer Science" .
`

func main() {
	// 1. Load the RDF graph and its SHACL shape schema.
	g, err := s3pg.ParseTurtle(dataTurtle)
	if err != nil {
		log.Fatal(err)
	}
	shapes, err := s3pg.ShapesFromTurtle(shapesTurtle)
	if err != nil {
		log.Fatal(err)
	}

	// 2. The source graph conforms to its shapes.
	if v := s3pg.ValidateSHACL(g, shapes); len(v) > 0 {
		log.Fatalf("unexpected SHACL violations: %v", v)
	}
	fmt.Printf("RDF graph: %d triples, conforms to %d node shapes\n", g.Len(), shapes.Len())

	// 3. Transform: SHACL → PG-Schema and RDF → property graph.
	store, schema, err := s3pg.Transform(g, shapes, s3pg.Parsimonious)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("property graph: %d nodes, %d edges, %d relationship types\n",
		store.NumNodes(), store.NumEdges(), store.RelTypes())
	fmt.Println("\n--- PG-Schema (Figure 2d) ---")
	fmt.Println(s3pg.WriteDDL(schema))

	// 4. The transformed graph conforms to the transformed schema.
	if v := s3pg.CheckPG(store, schema); len(v) > 0 {
		log.Fatalf("unexpected PG-Schema violations: %v", v)
	}

	// 5. Query with Cypher: bob's courses are heterogeneous — one is a
	// proper Course entity, one is just a string — and both are preserved.
	res, err := s3pg.EvalCypher(store, `
MATCH (s:GraduateStudent)-[:takesCourse]->(t)
RETURN s.iri AS student, COALESCE(t.value, t.iri) AS course`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- takesCourse answers ---")
	for _, row := range res.Rows {
		fmt.Printf("  %v takes %v\n", row[0], row[1])
	}

	// 6. Round trip: the original RDF graph is reconstructed exactly.
	back, err := s3pg.InverseData(store, schema)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ninformation preserving: reconstructed graph equals original = %v\n", g.Equal(back))

	// 7. The SHACL schema is also recoverable from the PG-Schema.
	shapesBack, err := s3pg.InverseSchema(schema)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("schema preserving: reconstructed shapes equal original = %v\n", shapes.Equal(shapesBack))
}
