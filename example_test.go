package s3pg_test

import (
	"fmt"
	"log"

	"github.com/s3pg/s3pg"
)

// Example transforms a tiny knowledge graph with a heterogeneous property
// and shows that nothing is lost.
func Example() {
	data := `
@prefix ex: <http://example.org/#> .
ex:album1 a ex:Album ;
  ex:title "California Sunrise" ;
  ex:writer ex:billy ;
  ex:writer "Tofer Brown" .
ex:billy a ex:Person ; ex:name "Billy Montana" .
`
	shapesTTL := `
@prefix sh:  <http://www.w3.org/ns/shacl#> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
@prefix ex:  <http://example.org/#> .
ex:AlbumShape a sh:NodeShape ; sh:targetClass ex:Album ;
  sh:property [ sh:path ex:title ; sh:datatype xsd:string ; sh:minCount 1 ; sh:maxCount 1 ] ;
  sh:property [ sh:path ex:writer ;
    sh:or ( [ sh:class ex:Person ] [ sh:datatype xsd:string ] ) ; sh:minCount 1 ] .
ex:PersonShape a sh:NodeShape ; sh:targetClass ex:Person ;
  sh:property [ sh:path ex:name ; sh:datatype xsd:string ; sh:minCount 1 ; sh:maxCount 1 ] .
`
	g, err := s3pg.ParseTurtle(data)
	if err != nil {
		log.Fatal(err)
	}
	shapes, err := s3pg.ShapesFromTurtle(shapesTTL)
	if err != nil {
		log.Fatal(err)
	}
	store, schema, err := s3pg.Transform(g, shapes, s3pg.Parsimonious)
	if err != nil {
		log.Fatal(err)
	}
	res, err := s3pg.EvalCypher(store, `
MATCH (a:Album)-[:writer]->(w)
RETURN COALESCE(w.value, w.iri) AS writer
ORDER BY writer`)
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range res.Rows {
		fmt.Println(row[0])
	}
	back, _ := s3pg.InverseData(store, schema)
	fmt.Println("lossless:", g.Equal(back))
	// Output:
	// Tofer Brown
	// http://example.org/#billy
	// lossless: true
}

// ExampleExtractShapes derives a SHACL schema directly from instance data
// when no hand-written shapes exist.
func ExampleExtractShapes() {
	g, _ := s3pg.ParseTurtle(`
@prefix ex: <http://example.org/#> .
ex:a1 a ex:City ; ex:name "Aalborg" ; ex:population 120000 .
ex:a2 a ex:City ; ex:name "Lyon" ; ex:population 520000 .
`)
	shapes := s3pg.ExtractShapes(g, 0)
	for _, ns := range shapes.Shapes() {
		fmt.Println(ns.TargetClass, len(ns.Properties), "properties")
	}
	// Output:
	// http://example.org/#City 2 properties
}

// ExampleTranslateQuery shows the automatic SPARQL → Cypher translation.
func ExampleTranslateQuery() {
	g, _ := s3pg.ParseTurtle(`
@prefix ex: <http://example.org/#> .
ex:s1 a ex:Student ; ex:name "Ada" .
`)
	shapes := s3pg.ExtractShapes(g, 0)
	_, schema, err := s3pg.Transform(g, shapes, s3pg.Parsimonious)
	if err != nil {
		log.Fatal(err)
	}
	cypherQ, err := s3pg.TranslateQuery(`
PREFIX ex: <http://example.org/#>
SELECT ?s ?n WHERE { ?s a ex:Student ; ex:name ?n . }`, schema)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(cypherQ)
	// Output:
	// MATCH (n_s:Student)
	// UNWIND n_s.name AS n
	// RETURN n_s.iri AS s, n
	// UNION ALL
	// MATCH (n_s:Student)-[:name]->(t_n)
	// RETURN n_s.iri AS s, COALESCE(t_n.value, t_n.iri) AS n
}
