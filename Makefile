GO ?= go

.PHONY: build test bench verify experiments

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# verify is the pre-commit gate: static checks, formatting, and the racy
# packages (the obs instruments and the core transformer they instrument)
# under the race detector.
verify:
	$(GO) vet ./...
	@fmtout="$$(gofmt -l .)"; if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; fi
	$(GO) test -race ./internal/obs/... ./internal/core/...
	$(GO) test ./...

experiments:
	$(GO) run ./cmd/experiments
