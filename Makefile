GO ?= go
FUZZTIME ?= 10s

.PHONY: build test bench bench-json bench-obs bench-dist bench-delta bench-serve bench-oocore verify fuzz chaos dist-chaos delta-chaos experiments

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# bench-json measures the -workers parallel pipeline against the sequential
# baseline, verifies byte-identical outputs, and writes BENCH_parallel.json.
# MIN_SPEEDUP > 0 turns it into a gate (auto-skipped on <4-CPU machines).
MIN_SPEEDUP ?= 0
bench-json:
	$(GO) run ./cmd/benchjson -out BENCH_parallel.json -min-speedup $(MIN_SPEEDUP)

# bench-obs measures the telemetry layer's overhead: the pipeline run bare
# versus run with the daemon's per-job instrumentation (span tree, lifecycle
# logs, histograms, JSONL trace) live, writing BENCH_obs.json.
# MAX_OBS_OVERHEAD > 0 turns it into a gate (auto-skipped on <4-CPU machines).
MAX_OBS_OVERHEAD ?= 0
bench-obs:
	$(GO) run ./cmd/benchjson -mode obs -out BENCH_obs.json -reps 5 -max-overhead-pct $(MAX_OBS_OVERHEAD)

# bench-dist times the coordinator/worker distributed transform (real loopback
# HTTP, real spool writes, dense-remap merge) against the sequential pipeline,
# writing BENCH_dist.json. Byte-equality of the merged outputs is a hard gate;
# the speedup number is informational (on one machine the protocol overhead is
# what is being tracked).
bench-dist:
	$(GO) run ./cmd/benchjson -mode dist -out BENCH_dist.json

# bench-delta measures change-based incremental maintenance (ApplyDelta)
# against full re-transformation, writing BENCH_delta.json. Two workloads:
# grow-only batches ride the monotone fast path (the speedup gate), and
# mixed churn (deletes + mutations) takes the deterministic rebuild path
# (informational). Byte-equality of the incrementally maintained exports
# with a from-scratch transform is a hard gate on both.
MIN_DELTA_SPEEDUP ?= 0
bench-delta:
	$(GO) run ./cmd/benchjson -mode delta -out BENCH_delta.json -min-speedup $(MIN_DELTA_SPEEDUP)

# bench-serve load-tests the online query tier: first the -race hammer test
# (the concurrency proof for lock-free snapshot swaps + LRU eviction), then
# SERVE_CLIENTS concurrent clients firing mixed Cypher/SPARQL queries at a
# real in-process daemon for SERVE_DURATION, writing BENCH_serve.json with
# p50/p95/p99 and QPS. Hard gates (CPU-independent): every answer byte-equals
# a single-threaded evaluation, and the snapshot cache records zero loads
# during the run.
SERVE_CLIENTS ?= 1000
SERVE_DURATION ?= 2s
bench-serve:
	$(GO) test -race -count=1 ./internal/serve
	$(GO) run ./cmd/benchjson -mode serve -out BENCH_serve.json \
		-scale 0.0002 -serve-clients $(SERVE_CLIENTS) -serve-duration $(SERVE_DURATION)

# bench-oocore gates the out-of-core transformation path: an XL-profile
# dataset whose in-RAM graph footprint is ≥ 3× OOCORE_BUDGET_MB is ingested
# under the spill governor, held under the budget on disk, and transformed
# over paged reads, writing BENCH_oocore.json. All gates are hard and
# CPU-independent: the 3× dataset-to-budget ratio, the post-spill residency
# ceiling, at least one spill, and byte-equality of nodes.csv/edges.csv/
# schema.ddl with the unconstrained in-RAM run.
OOCORE_BUDGET_MB ?= 16
bench-oocore:
	$(GO) run ./cmd/benchjson -mode oocore -out BENCH_oocore.json \
		-oocore-budget-mb $(OOCORE_BUDGET_MB)

# verify is the pre-commit gate: static checks, formatting, the racy
# packages (the obs instruments and the core transformer they instrument)
# under the race detector, the full test suite (including the corrupted-input
# corpus tests), and a short fuzz pass over every parser entry point.
verify:
	$(GO) vet ./...
	@fmtout="$$(gofmt -l .)"; if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; fi
	$(GO) test -race ./internal/obs/... ./internal/core/...
	$(GO) test ./...
	$(MAKE) fuzz

# fuzz runs every native fuzz target for FUZZTIME each: the N-Triples and
# Turtle parsers (strict and lenient), the Cypher lexer and parser, and the
# SPARQL parser. New crashers land in testdata/fuzz/ and become regression
# tests.
FUZZ_TARGETS = \
	FuzzParseNTriplesLine:./internal/rio \
	FuzzReadNTriplesLenient:./internal/rio \
	FuzzReadTurtle:./internal/rio \
	FuzzLexer:./internal/cypher \
	FuzzParse:./internal/cypher \
	FuzzParse:./internal/sparql \
	FuzzParseUpdate:./internal/sparql

fuzz:
	@for t in $(FUZZ_TARGETS); do \
		name=$${t%%:*}; pkg=$${t##*:}; \
		echo "fuzzing $$name in $$pkg for $(FUZZTIME)"; \
		$(GO) test -run='^$$' -fuzz="^$$name$$" -fuzztime=$(FUZZTIME) $$pkg || exit 1; \
	done

# chaos runs the s3pgd chaos matrix (real binary × fixed-seed fault
# regimes × SIGTERM/SIGKILL) plus the job manager and HTTP layer tests
# under the race detector. Daemon logs are kept in CHAOS_LOG_DIR so a CI
# failure ships them as an artifact.
CHAOS_LOG_DIR ?= $(CURDIR)/chaos-logs
chaos:
	S3PGD_CHAOS_LOG_DIR=$(CHAOS_LOG_DIR) \
		$(GO) test -race -count=1 ./internal/jobs ./internal/server ./cmd/s3pgd

# dist-chaos runs the distributed-transform fault matrix: a coordinator and
# three worker daemons (one straggler, one with injected FS faults, one
# healthy) through SIGKILL-a-worker, SIGTERM-and-restart-the-coordinator,
# lease eviction, and speculative reassignment — asserting every shard
# completes exactly once and the merged output is byte-identical to the
# sequential pipeline. The dist package's ledger/merge/registry unit tests
# ride along under the same race detector. Daemon and coordinator logs land
# in CHAOS_LOG_DIR for post-mortem.
dist-chaos:
	$(GO) test -race -count=1 ./internal/dist
	S3PGD_CHAOS_LOG_DIR=$(CHAOS_LOG_DIR) \
		$(GO) test -race -count=1 -run 'TestDist' ./cmd/s3pgd

# delta-chaos runs the crash-safe incremental-transform matrix: the WAL and
# live-graph layers under the race detector, then the SIGKILL matrix against
# the real daemon — kill mid-ApplyDelta, mid-WAL-append, and mid-/changes
# stream — asserting no acknowledged LSN is lost or double-applied, resumed
# subscriber streams are byte-identical to uninterrupted ones, and the
# recovered exports equal a full re-transform of the accepted batch prefix.
# Daemon logs land in CHAOS_LOG_DIR for post-mortem.
delta-chaos:
	$(GO) test -race -count=1 ./internal/wal ./internal/server
	S3PGD_CHAOS_LOG_DIR=$(CHAOS_LOG_DIR) \
		$(GO) test -race -count=1 -run 'TestDeltaChaos' ./cmd/s3pgd

experiments:
	$(GO) run ./cmd/experiments
